"""Property-based reassembly tests.

A reference sender (go-back-N, like FlexTOE's own TX) pushes a random
byte stream through a hostile channel (drops, reordering, duplication)
into :func:`process_rx`. Invariants:

* every byte the receiver notifies as in-order equals the true stream;
* the cumulative ACK never moves backwards;
* the receiver eventually receives the whole stream (liveness under
  bounded retransmission rounds);
* buffer writes never land outside granted window space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flextoe.descriptors import HeaderSummary
from repro.flextoe.proto_logic import WINDOW_SCALE, process_rx
from repro.flextoe.state import ProtocolState
from repro.proto.tcp import FLAG_ACK, seq_add, seq_diff

ISS = 7000  # peer's initial send sequence


class VirtualRxBuffer:
    """Records DMA placements keyed by absolute stream position."""

    def __init__(self):
        self.cells = {}

    def write(self, pos, payload):
        for i, byte in enumerate(payload):
            self.cells[pos + i] = byte

    def read_range(self, start, length):
        return bytes(self.cells[start + i] for i in range(length))


def feed(state, buffer, seg_seq, payload, stream, notified):
    summary = HeaderSummary(
        seq=seg_seq,
        ack=state.seq,  # peer has nothing to ack from us
        flags=FLAG_ACK,
        window=0xFFFF,
        payload_len=len(payload),
    )
    prev_ack = state.ack
    result = process_rx(state, summary, payload)
    # ACK monotonicity.
    assert seq_diff(state.ack, prev_ack) >= 0
    if result.payload_dest_pos is not None and result.payload:
        buffer.write(result.payload_dest_pos, result.payload)
    if result.notify_rx_len:
        data = buffer.read_range(result.notify_rx_pos, result.notify_rx_len)
        expected = stream[result.notify_rx_pos : result.notify_rx_pos + result.notify_rx_len]
        assert data == expected
        notified.append((result.notify_rx_pos, result.notify_rx_len))
    return result


@settings(max_examples=60, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=3000),
    mss=st.integers(min_value=1, max_value=700),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_stream_integrity_under_hostile_channel(data, mss, seed):
    import random

    rng = random.Random(seed)
    state = ProtocolState(seq=1, ack=ISS, rx_avail=1 << 20)
    buffer = VirtualRxBuffer()
    notified = []

    # Reference go-back-N sender.
    snd_una = 0  # stream offset acknowledged
    rounds = 0
    while snd_una < len(data) and rounds < 200:
        rounds += 1
        # Send a window of segments starting at snd_una.
        segments = []
        offset = snd_una
        while offset < len(data) and len(segments) < 16:
            chunk = data[offset : offset + mss]
            segments.append((offset, chunk))
            offset += len(chunk)
        # Hostile channel: drop/duplicate/reorder.
        wire = []
        for seg in segments:
            action = rng.random()
            if action < 0.2:
                continue  # drop
            wire.append(seg)
            if action < 0.35:
                wire.append(seg)  # duplicate
        rng.shuffle(wire)
        for offset, chunk in wire:
            feed(state, buffer, seq_add(ISS, offset), chunk, data, notified)
        snd_una = seq_diff(state.ack, ISS)

    assert snd_una == len(data), "stream did not complete"
    # Notifications cover the stream exactly once, in order.
    covered = 0
    for pos, length in notified:
        assert pos == covered
        covered += length
    assert covered == len(data)


@settings(max_examples=40, deadline=None)
@given(
    data=st.binary(min_size=10, max_size=1000),
    window=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_never_writes_beyond_granted_window(data, window, seed):
    """With a tiny rx window and in-order delivery plus occasional dups,
    accepted bytes never exceed the window grants."""
    import random

    rng = random.Random(seed)
    state = ProtocolState(seq=1, ack=ISS, rx_avail=window)
    buffer = VirtualRxBuffer()
    notified = []
    granted = window
    sent = 0
    stalls = 0
    while sent < len(data) and stalls < 3000:
        chunk = data[sent : sent + 37]
        result = feed(state, buffer, seq_add(ISS, sent), chunk, data, notified)
        accepted = len(result.payload) if result.payload_dest_pos is not None else 0
        sent += accepted
        if accepted < len(chunk):
            stalls += 1
            # Application consumes; host posts an RX window update.
            refill = rng.randint(1, window)
            state.rx_avail += refill
            granted += refill
    total_notified = sum(length for _, length in notified)
    assert total_notified <= granted
    assert state.rx_avail >= 0


def test_interval_reassembly_exact_bytes():
    """Deterministic end-to-end: stream sent as 7 segments, middle ones
    reordered, whole stream reassembled byte-exact."""
    data = bytes(range(256)) * 3
    mss = 128
    order = [0, 2, 1, 4, 3, 5]  # swap pairs -> exercises the interval
    state = ProtocolState(seq=1, ack=ISS, rx_avail=1 << 16)
    buffer = VirtualRxBuffer()
    notified = []
    for index in order:
        offset = index * mss
        feed(state, buffer, seq_add(ISS, offset), data[offset : offset + mss], data, notified)
    assert seq_diff(state.ack, ISS) == len(data)
    assert sum(length for _, length in notified) == len(data)
