"""tcpdump capture (filters, pcap format) and tracepoints."""

import struct

from repro.flextoe.tcpdump import CAPTURE_COST_CYCLES, FILTER_COST_CYCLES, PacketCapture, PacketFilter
from repro.flextoe.tracing import TRACEPOINTS, TracepointRegistry
from repro.proto import FLAG_ACK, FLAG_SYN, make_tcp_frame, str_to_ip

SRC = str_to_ip("10.0.0.1")
DST = str_to_ip("10.0.0.2")


def frame(flags=FLAG_ACK, sport=1000, dport=2000, payload=b"abc"):
    return make_tcp_frame(0xA, 0xB, SRC, DST, sport, dport, flags=flags, payload=payload)


def test_filter_matches_fields():
    f = PacketFilter(src_ip=SRC, dport=2000)
    assert f.matches(frame())
    assert not f.matches(frame(dport=2001))
    f2 = PacketFilter(tcp_flags_any=FLAG_SYN)
    assert f2.matches(frame(flags=FLAG_SYN))
    assert not f2.matches(frame(flags=FLAG_ACK))


def test_capture_records_and_costs():
    capture = PacketCapture(snaplen=64)
    assert capture.cost_cycles(frame()) == CAPTURE_COST_CYCLES
    assert capture.capture(1000, "rx", frame())
    assert len(capture) == 1
    now, direction, orig_len, wire = capture.records[0]
    assert direction == "rx"
    assert len(wire) <= 64
    assert orig_len == frame().wire_len


def test_filtered_capture_costs_less_for_misses():
    capture = PacketCapture(packet_filter=PacketFilter(dport=9999))
    assert capture.cost_cycles(frame()) == FILTER_COST_CYCLES
    assert not capture.capture(0, "rx", frame())
    assert len(capture) == 0


def test_capture_limit():
    capture = PacketCapture(limit=2)
    for _ in range(4):
        capture.capture(0, "rx", frame())
    assert len(capture) == 2
    assert capture.truncated_drops == 2
    assert capture.matched == 4


def test_pcap_file_format(tmp_path):
    capture = PacketCapture(snaplen=128)
    capture.capture(1_500_000_000, "rx", frame())
    capture.capture(2_000_000_123, "tx", frame(flags=FLAG_SYN))
    path = tmp_path / "trace.pcap"
    capture.write_pcap(str(path))
    data = path.read_bytes()
    magic, major, minor = struct.unpack_from("!IHH", data, 0)
    assert magic == 0xA1B2C3D4
    assert (major, minor) == (2, 4)
    # First record header: ts_sec = 1.
    ts_sec, ts_usec, incl, orig = struct.unpack_from("!IIII", data, 24)
    assert ts_sec == 1
    assert incl <= 128


def test_pcap_write_read_roundtrip(tmp_path):
    from repro.flextoe.tcpdump import read_pcap
    from repro.proto import Frame

    capture = PacketCapture(snaplen=2048)
    f1, f2 = frame(payload=b"first"), frame(flags=FLAG_SYN, payload=b"")
    capture.capture(3_000_000_500, "rx", f1)
    capture.capture(4_000_001_000, "tx", f2)
    path = tmp_path / "roundtrip.pcap"
    capture.write_pcap(str(path))
    records = read_pcap(str(path))
    assert len(records) == 2
    ts, wire, orig = records[0]
    assert ts == 3_000_000_000  # microsecond pcap resolution
    assert orig == f1.wire_len
    parsed = Frame.unpack(wire)
    assert parsed.payload == b"first"
    assert parsed.tcp.sport == 1000


def test_read_pcap_rejects_garbage(tmp_path):
    import pytest

    from repro.flextoe.tcpdump import read_pcap

    path = tmp_path / "bad.pcap"
    path.write_bytes(b"\x00" * 24)
    with pytest.raises(ValueError):
        read_pcap(str(path))


def test_tracepoint_costs_only_when_enabled():
    registry = TracepointRegistry(enabled=False)
    assert registry.hit(0, "proto", "rx.segment") == 0
    registry.enable_all()
    cost = registry.hit(1, "proto", "rx.segment")
    assert cost == TRACEPOINTS["rx.segment"]
    assert registry.count("rx.segment") == 1
    registry.disable_all()
    assert registry.hit(2, "proto", "rx.segment") == 0


def test_tracepoint_selective_enable():
    registry = TracepointRegistry()
    registry.enable(["rx.out_of_order"])
    assert registry.cost("rx.out_of_order") > 0
    assert registry.cost("rx.segment") == 0


def test_tracepoint_catalog_size():
    # The paper implements up to 48 tracepoints; the catalog holds the
    # documented set and is extensible.
    assert 25 <= len(TRACEPOINTS) <= 48


def test_field_filters_reject_non_tcp_frames():
    # A field filter must treat frames without IP/TCP headers as misses,
    # not crash on the absent headers.
    from repro.proto import ARP_REQUEST, ArpHeader, EthernetHeader, ETHERTYPE_ARP, Frame

    arp = Frame(
        EthernetHeader(0xFFFFFFFFFFFF, 0xA, ethertype=ETHERTYPE_ARP),
        arp=ArpHeader(ARP_REQUEST, 0xA, SRC, 0, DST),
    )
    assert not PacketFilter(src_ip=SRC).matches(arp)
    assert not PacketFilter(sport=1000).matches(arp)
    assert not PacketFilter(tcp_flags_any=FLAG_SYN).matches(arp)
    assert PacketFilter().matches(arp)  # empty filter matches anything
    capture = PacketCapture(packet_filter=PacketFilter(dport=2000))
    assert not capture.capture(0, "rx", arp)
    assert capture.cost_cycles(arp) == FILTER_COST_CYCLES


def test_pcap_timestamp_microsecond_rounding(tmp_path):
    from repro.flextoe.tcpdump import read_pcap

    capture = PacketCapture()
    capture.capture(1_000_000_999, "rx", frame())  # sub-µs part truncates
    path = tmp_path / "ts.pcap"
    capture.write_pcap(str(path))
    (ts_ns, _data, _orig), = read_pcap(str(path))
    assert ts_ns == 1_000_000_000
