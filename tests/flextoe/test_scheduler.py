"""Carousel flow scheduler: work conservation, pacing, fairness."""

from repro.flextoe import CarouselScheduler
from repro.flextoe.scheduler import INTERVAL_Q8_SHIFT, rate_to_interval_q8
from repro.nfp import Fpc
from repro.sim import Simulator, Store


def build(mss=1000, slot_ns=1000):
    sim = Simulator()
    ring = Store(sim)
    sched = CarouselScheduler(sim, ring, mss=mss, slot_ns=slot_ns)
    fpc = Fpc(sim, "sch")
    fpc.spawn(sched.program)
    return sim, ring, sched


def drain(ring):
    out = []
    while True:
        ok, item = ring.try_get()
        if not ok:
            return out
        out.append(item)


def test_uncongested_flow_round_robin():
    sim, ring, sched = build()
    sched.fs_update(1, 2500)
    sim.run(until=1_000_000)
    triggers = drain(ring)
    # 2500 bytes at mss 1000 -> 3 triggers (1000+1000+500).
    assert triggers == [1, 1, 1]
    assert sched.triggers_issued == 3


def test_multiple_flows_interleaved_fairly():
    sim, ring, sched = build()
    sched.fs_update(1, 3000)
    sched.fs_update(2, 3000)
    sim.run(until=1_000_000)
    triggers = drain(ring)
    assert triggers.count(1) == 3
    assert triggers.count(2) == 3
    # Round-robin: no flow gets two triggers in a row more than once.
    runs = sum(1 for a, b in zip(triggers, triggers[1:]) if a == b)
    assert runs <= 1


def test_fs_update_zero_dequeues_flow():
    sim, ring, sched = build()
    sched.fs_update(1, 5000)
    sim.run(until=10_000)
    sched.fs_update(1, 0)
    sim.run(until=1_000_000)
    drained = drain(ring)
    # The flow stops promptly after the zero refresh.
    assert len(drained) <= 5


def test_rate_limited_flow_paced_by_time_wheel():
    sim, ring, sched = build()
    # 1000 bytes per 100 us  (10 MB/s).
    sched.set_rate(1, 10_000_000)
    sched.fs_update(1, 10_000)
    arrivals = []

    def watcher(sim):
        while len(arrivals) < 5:
            item = yield ring.get()
            arrivals.append(sim.now)

    sim.process(watcher(sim))
    sim.run(until=2_000_000)
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    # mss=1000 at 10 MB/s -> 100 us between triggers.
    assert all(85_000 < gap < 120_000 for gap in gaps), gaps
    assert sched.rate_limited_enqueues > 0


def test_unlimited_after_rate_removed():
    sim, ring, sched = build()
    sched.set_rate(1, 10_000_000)
    sched.set_interval(1, 0)  # back to unlimited
    sched.fs_update(1, 3000)
    sim.run(until=50_000)
    assert len(drain(ring)) == 3  # burst, not paced


def test_remove_flow_stops_scheduling():
    sim, ring, sched = build()
    sched.fs_update(1, 100_000)
    sim.run(until=5_000)
    sched.remove_flow(1)
    before = sched.triggers_issued
    sim.run(until=1_000_000)
    assert sched.triggers_issued <= before + 2


def test_interval_conversion():
    # 1 GB/s -> 1 ns/byte -> Q8 = 256.
    assert rate_to_interval_q8(1_000_000_000) == 1 << INTERVAL_Q8_SHIFT
    assert rate_to_interval_q8(0) == 0
    # Very fast rates clamp to the minimum representable interval.
    assert rate_to_interval_q8(10**15) == 1


def test_wake_from_idle():
    sim, ring, sched = build()
    sim.run(until=100_000)  # scheduler idles
    sched.fs_update(7, 500)
    sim.run(until=200_000)
    assert drain(ring) == [7]
