"""Data-path assembly: FPC layout per configuration (paper Fig. 8),
connection install/remove, and the NIC facade."""

import pytest

from repro.flextoe import FlexToeNic
from repro.flextoe.config import PipelineConfig
from repro.host.memory import HugepagePool
from repro.libtoe.buffers import CircularBuffer
from repro.sim import Simulator


def make_nic(config=None):
    return FlexToeNic(Simulator(), config=config or PipelineConfig.full())


def test_full_config_fpc_layout():
    nic = make_nic()
    chip = nic.chip
    # 4 protocol islands x (1 proto + 4 pre + 4 post) = 36 FPCs,
    # service island: 4 DMA + NBI + CTX + SCH = 7. 60 - 43 = 17 free.
    assert chip.total_fpcs() - chip.free_fpcs() == 43
    # Each protocol island retains >= 3 free FPCs for extension modules.
    for island in chip.islands[:4]:
        assert island.free_fpcs >= 3
    dp = nic.datapath
    assert len(dp.protocol_stages) == 4
    assert len(dp.pre_stages) == 16
    assert len(dp.post_stages) == 16
    assert dp.serial_lock is None


def test_single_flow_group_layout():
    nic = make_nic(PipelineConfig.with_intra_fpc_parallelism())
    dp = nic.datapath
    assert len(dp.protocol_stages) == 1
    assert len(dp.pre_stages) == 1
    assert len(dp.post_stages) == 1


def test_run_to_completion_layout():
    nic = make_nic(PipelineConfig.baseline_run_to_completion())
    dp = nic.datapath
    assert dp.serial_lock is not None
    assert len(dp.protocol_stages) == 1
    # Everything fits in one island plus nothing else claimed.
    assert nic.chip.islands[0].free_fpcs == 12 - 4


def test_agilio_lx_has_headroom():
    from repro.nfp import Nfp4000, NfpConfig

    sim = Simulator()
    nic = FlexToeNic(sim, chip=Nfp4000(sim, NfpConfig.agilio_lx()))
    assert nic.chip.free_fpcs() >= 70  # LX doubles the islands


def _buffers():
    pool = HugepagePool(n_pages=1)
    rx = CircularBuffer(pool.alloc(4096))
    tx = CircularBuffer(pool.alloc(4096))
    return rx.as_triple(), tx.as_triple()


def offload(nic, index=None, port=5000):
    index = index if index is not None else nic.allocate_connection_index()
    rx, tx = _buffers()
    return nic.offload_connection(
        index=index,
        four_tuple=(0x0A000001, 0x0A000002, port, 6000),
        peer_mac=0xBB,
        local_mac=0xAA,
        iss=1000,
        irs=2000,
        context_id=1,
        opaque=index,
        rx_buffer=rx,
        tx_buffer=tx,
    )


def test_offload_installs_lookup_and_state():
    nic = make_nic()
    record = offload(nic)
    found, index, _ = nic.datapath.lookup_engine.lookup(record.four_tuple)
    assert found and index == record.index
    assert nic.connection(record.index) is record
    assert record.proto.seq == 1000
    assert record.proto.ack == 2000
    assert record.pre.flow_group == nic.config.flow_group_of(record.four_tuple)


def test_remove_connection_cleans_everything():
    nic = make_nic()
    record = offload(nic)
    nic.set_flow_rate(record.index, 1_000_000)
    removed = nic.remove_connection(record.index)
    assert removed is record
    assert not record.active
    found, _, _ = nic.datapath.lookup_engine.lookup(record.four_tuple)
    assert not found
    assert nic.connection(record.index) is None
    assert record.index not in nic.scheduler._flows


def test_connection_index_reuse():
    nic = make_nic()
    record = offload(nic)
    first_index = record.index
    nic.remove_connection(first_index)
    assert nic.allocate_connection_index() == first_index


def test_duplicate_index_rejected():
    nic = make_nic()
    record = offload(nic, index=7)
    with pytest.raises(ValueError):
        offload(nic, index=7, port=5001)


def test_cc_stats_read_and_reset():
    nic = make_nic()
    record = offload(nic)
    record.post.cnt_ackb = 1000
    record.post.cnt_ecnb = 100
    record.post.cnt_fretx = 2
    record.post.rtt_est = 55
    stats = nic.read_cc_stats(record.index)
    assert stats == (1000, 100, 2, 55)
    assert nic.read_cc_stats(record.index) == (0, 0, 0, 55)
    assert nic.read_cc_stats(9999) is None


def test_rtt_samples_aggregated_across_post_replicas():
    # Replicated post stages accumulate RTT samples privately; the
    # cc-stats poll drains every replica and folds the batch mean into
    # the EWMA at one site (rtt_est starts at 0, so the first fold sets
    # it to the mean outright).
    nic = make_nic()
    record = offload(nic)
    dp = nic.datapath
    group = record.pre.flow_group
    replicas = [s for s in dp.post_stages if s.flow_group == group][:2]
    assert len(replicas) == 2
    replicas[0].rtt_samples[record.index] = (120, 2)  # two samples of 60
    replicas[1].rtt_samples[record.index] = (40, 1)  # one sample of 40
    stats = nic.read_cc_stats(record.index)
    assert stats[3] == (120 + 40) // 3
    # Accumulators drained; a second poll folds nothing new.
    assert replicas[0].rtt_samples == {}
    assert nic.read_cc_stats(record.index)[3] == stats[3]


def test_rtt_fold_is_ewma_after_first_estimate():
    nic = make_nic()
    record = offload(nic)
    record.post.rtt_est = 80
    nic.datapath.post_stages[0].rtt_samples[record.index] = (160, 2)
    # flow_group of post_stages[0] may differ from the record's; drain
    # still sums every replica for this connection index.
    assert nic.read_cc_stats(record.index)[3] == (7 * 80 + 80) // 8


def test_remove_connection_drops_rtt_accumulators():
    nic = make_nic()
    record = offload(nic)
    nic.datapath.post_stages[0].rtt_samples[record.index] = (500, 1)
    nic.remove_connection(record.index)
    assert nic.datapath.post_stages[0].rtt_samples == {}


def test_atomic_add_charges_engine_latency_and_saturates():
    from repro.flextoe.state import atomic_add, atomic_fields
    from repro.nfp.memory import LAT_ATOMIC_ADD

    nic = make_nic()
    record = offload(nic)
    assert atomic_fields() == {
        "cnt_ackb": "post",
        "cnt_ecnb": "post",
        "cnt_fretx": "post",
        "hb_beats": "heartbeat",
    }
    assert atomic_add(record.post, "cnt_ackb", 1460) == LAT_ATOMIC_ADD
    assert record.post.cnt_ackb == 1460
    record.post.cnt_fretx = 254
    atomic_add(record.post, "cnt_fretx", 1, maximum=255)
    atomic_add(record.post, "cnt_fretx", 1, maximum=255)
    assert record.post.cnt_fretx == 255
    with pytest.raises(ValueError, match="not declared"):
        atomic_add(record.post, "rtt_est", 1)


def test_state_partition_sizes_match_table5():
    from repro.flextoe.state import (
        PostprocState,
        PreprocState,
        ProtocolState,
        TOTAL_STATE_BYTES,
    )

    assert PreprocState.SIZE_BYTES == 15
    assert ProtocolState.SIZE_BYTES == 43
    assert PostprocState.SIZE_BYTES == 51
    # The paper reports 108 B aggregate; its partition sizes sum to 109
    # (flow_group is 2 bits, rounded into the 15 B pre-processor part).
    assert TOTAL_STATE_BYTES in (108, 109)
