"""Unit tests for the atomic protocol stage logic (RX/TX/HC)."""

from repro.flextoe.descriptors import (
    HC_FIN,
    HC_RETRANSMIT,
    HC_RX_UPDATE,
    HC_TX_UPDATE,
    HeaderSummary,
    HostControlDescriptor,
)
from repro.flextoe.proto_logic import (
    WINDOW_SCALE,
    advertised_window,
    process_hc,
    process_rx,
    process_tx,
)
from repro.flextoe.state import ProtocolState
from repro.proto.tcp import FLAG_ACK, FLAG_FIN, seq_add


def make_state(seq=1000, ack=5000, rx_avail=64 * 1024, remote_win=64 * 1024):
    state = ProtocolState(seq=seq, ack=ack, rx_avail=rx_avail)
    state.remote_win = remote_win
    return state


def rx_summary(state, payload=b"", seq=None, ack=None, window=None, flags=FLAG_ACK, ts_val=None, ts_ecr=None):
    """A summary as the peer would send it, defaulting to in-order."""
    win = window if window is not None else (64 * 1024) >> WINDOW_SCALE
    return HeaderSummary(
        seq=seq if seq is not None else state.ack,
        ack=ack if ack is not None else seq_add(state.seq, -state.tx_sent),
        flags=flags,
        window=win,
        payload_len=len(payload),
        ts_val=ts_val,
        ts_ecr=ts_ecr,
    )


# ---------------------------------------------------------------- RX ----


def test_in_order_data_advances_window():
    state = make_state()
    payload = b"a" * 100
    result = process_rx(state, rx_summary(state, payload), payload)
    assert result.payload_dest_pos == 0
    assert result.payload == payload
    assert result.send_ack
    assert result.notify_rx_pos == 0
    assert result.notify_rx_len == 100
    assert state.ack == 5100
    assert state.rx_pos == 100
    assert state.rx_avail == 64 * 1024 - 100


def test_pure_ack_not_acked_back():
    state = make_state()
    state.tx_avail = 1000
    tx = process_tx(state, mss=500)
    summary = rx_summary(state, ack=seq_add(1000, 500))
    result = process_rx(state, summary, b"")
    assert not result.send_ack
    assert result.acked_bytes == 500
    assert state.tx_sent == 0


def test_partial_ack():
    state = make_state()
    state.tx_avail = 1000
    process_tx(state, mss=600)
    summary = rx_summary(state, ack=seq_add(1000, 200))
    result = process_rx(state, summary, b"")
    assert result.acked_bytes == 200
    assert state.tx_sent == 400


def test_old_ack_ignored():
    state = make_state()
    state.tx_avail = 100
    process_tx(state, mss=100)
    stale = rx_summary(state, ack=900)  # before SND.UNA
    result = process_rx(state, stale, b"")
    assert result.acked_bytes == 0
    assert state.tx_sent == 100


def test_duplicate_data_pure_dup_acked():
    state = make_state()
    payload = b"b" * 50
    process_rx(state, rx_summary(state, payload), payload)
    # Same segment again: fully duplicate.
    dup_summary = rx_summary(state, payload, seq=5000)
    result = process_rx(state, dup_summary, payload)
    assert result.ack_is_dup
    assert result.send_ack
    assert result.payload_dest_pos is None
    assert state.ack == 5050


def test_partial_overlap_front_trimmed():
    state = make_state()
    first = b"c" * 50
    process_rx(state, rx_summary(state, first), first)
    # Segment covering [5020, 5080): first 30 bytes are duplicate.
    payload = b"d" * 60
    summary = rx_summary(state, payload, seq=5020)
    result = process_rx(state, summary, payload)
    assert result.payload_dest_pos == 50
    assert result.payload == payload[30:]
    assert state.ack == 5080


def test_out_of_order_opens_interval():
    state = make_state()
    payload = b"e" * 100
    summary = rx_summary(state, payload, seq=5200)  # hole of 200 bytes
    result = process_rx(state, summary, payload)
    assert result.was_ooo
    assert result.payload_dest_pos == 200
    assert result.notify_rx_len == 0
    assert state.ack == 5000  # unchanged
    assert state.ooo_start == 5200 and state.ooo_len == 100
    assert result.send_ack  # dup-ack with expected seq


def test_hole_fill_delivers_interval():
    state = make_state()
    ooo = b"f" * 100
    process_rx(state, rx_summary(state, ooo, seq=5100), ooo)
    fill = b"g" * 100
    result = process_rx(state, rx_summary(state, fill, seq=5000), fill)
    assert result.payload_dest_pos == 0
    assert state.ack == 5200
    assert state.rx_pos == 200
    assert not state.has_ooo
    assert result.notify_rx_pos == 0
    assert result.notify_rx_len == 200


def test_ooo_merge_adjacent_extends_interval():
    state = make_state()
    a = b"h" * 100
    process_rx(state, rx_summary(state, a, seq=5200), a)
    b = b"i" * 100
    result = process_rx(state, rx_summary(state, b, seq=5300), b)
    assert not result.dropped_ooo
    assert state.ooo_start == 5200 and state.ooo_len == 200


def test_ooo_merge_failure_drops_segment():
    state = make_state()
    a = b"j" * 100
    process_rx(state, rx_summary(state, a, seq=5200), a)
    # Disjoint second hole: cannot merge with single interval.
    far = b"k" * 100
    result = process_rx(state, rx_summary(state, far, seq=5500), far)
    assert result.dropped_ooo
    assert result.send_ack
    assert state.ooo_start == 5200 and state.ooo_len == 100


def test_ooo_overlap_merges_union():
    state = make_state()
    a = b"l" * 100
    process_rx(state, rx_summary(state, a, seq=5200), a)
    b = b"m" * 100
    process_rx(state, rx_summary(state, b, seq=5150), b)
    assert state.ooo_start == 5150
    assert state.ooo_len == 150


def test_hole_fill_overlapping_interval_is_trimmed():
    state = make_state()
    ooo = b"n" * 100
    process_rx(state, rx_summary(state, ooo, seq=5100), ooo)
    # Fill covers [5000, 5150): last 50 bytes overlap the interval.
    fill = b"o" * 150
    result = process_rx(state, rx_summary(state, fill, seq=5000), fill)
    assert state.ack == 5200
    assert not state.has_ooo
    assert result.notify_rx_len == 200


def test_rx_window_trim():
    state = make_state(rx_avail=50)
    payload = b"p" * 100
    result = process_rx(state, rx_summary(state, payload), payload)
    assert result.payload == payload[:50]
    assert state.ack == 5050
    assert state.rx_avail == 0


def test_rx_zero_window_dup_ack():
    state = make_state(rx_avail=0)
    payload = b"q" * 10
    result = process_rx(state, rx_summary(state, payload), payload)
    assert result.send_ack
    assert result.ack_is_dup
    assert state.ack == 5000


def test_fast_retransmit_on_three_dupacks():
    state = make_state()
    state.tx_avail = 3000
    process_tx(state, mss=1000)
    process_tx(state, mss=1000)
    assert state.tx_sent == 2000
    dup = rx_summary(state, ack=1000)
    for i in range(2):
        result = process_rx(state, dup, b"")
        assert not result.fast_retransmit
    result = process_rx(state, dup, b"")
    assert result.fast_retransmit
    assert state.tx_sent == 0
    assert state.seq == 1000
    assert state.tx_avail == 3000


def test_dupack_count_resets_on_progress():
    state = make_state()
    state.tx_avail = 2000
    process_tx(state, mss=1000)
    dup = rx_summary(state, ack=1000)
    process_rx(state, dup, b"")
    process_rx(state, dup, b"")
    assert state.dupack_cnt == 2
    good = rx_summary(state, ack=2000)
    process_rx(state, good, b"")
    assert state.dupack_cnt == 0


def test_window_update_not_counted_as_dupack():
    state = make_state()
    state.tx_avail = 1000
    process_tx(state, mss=1000)
    update = rx_summary(state, ack=1000, window=100)
    process_rx(state, update, b"")
    assert state.dupack_cnt == 0
    assert state.remote_win == 100 << WINDOW_SCALE


def test_fin_in_order_notifies_and_consumes_seq():
    state = make_state()
    payload = b"r" * 10
    summary = rx_summary(state, payload, flags=FLAG_ACK | FLAG_FIN)
    result = process_rx(state, summary, payload)
    assert result.fin_notified
    assert state.ack == 5011  # 10 data + 1 FIN
    assert state.rx_fin_seq == 5000


def test_bare_fin():
    state = make_state()
    summary = rx_summary(state, b"", flags=FLAG_ACK | FLAG_FIN)
    result = process_rx(state, summary, b"")
    assert result.fin_notified
    assert result.send_ack
    assert state.ack == 5001


def test_ooo_fin_deferred():
    state = make_state()
    payload = b"s" * 10
    summary = rx_summary(state, payload, seq=5100, flags=FLAG_ACK | FLAG_FIN)
    result = process_rx(state, summary, payload)
    assert not result.fin_notified
    assert state.rx_fin_seq is None


def test_timestamp_echo_stored():
    state = make_state()
    payload = b"t" * 10
    summary = rx_summary(state, payload, ts_val=12345)
    result = process_rx(state, summary, payload)
    assert state.next_ts == 12345
    assert result.echo_ts == 12345


def test_rtt_sample_from_ts_ecr():
    state = make_state()
    state.tx_avail = 100
    process_tx(state, mss=100)
    summary = rx_summary(state, ack=1100, ts_ecr=777)
    result = process_rx(state, summary, b"")
    assert result.rtt_sample_ecr == 777


# ---------------------------------------------------------------- TX ----


def test_tx_respects_mss_and_avail():
    state = make_state()
    state.tx_avail = 2500
    result = process_tx(state, mss=1000)
    assert (result.seq, result.stream_pos, result.length) == (1000, 0, 1000)
    assert state.seq == 2000 and state.tx_sent == 1000 and state.tx_avail == 1500
    result = process_tx(state, mss=1000)
    assert result.length == 1000
    result = process_tx(state, mss=1000)
    assert result.length == 500


def test_tx_respects_remote_window():
    state = make_state(remote_win=800)
    state.tx_avail = 5000
    result = process_tx(state, mss=1000)
    assert result.length == 800
    assert process_tx(state, mss=1000) is None  # window exhausted


def test_tx_nothing_to_send_returns_none():
    state = make_state()
    assert process_tx(state, mss=1000) is None


def test_tx_fin_piggybacks_on_last_segment():
    state = make_state()
    state.tx_avail = 100
    state.fin_pending = True
    result = process_tx(state, mss=1000)
    assert result.length == 100
    assert result.fin
    assert state.fin_seq == 1100
    assert state.seq == 1101
    assert state.tx_sent == 101


def test_tx_bare_fin_when_no_data():
    state = make_state()
    state.fin_pending = True
    result = process_tx(state, mss=1000)
    assert result is not None
    assert result.length == 0 and result.fin
    assert state.seq == 1001


def test_fin_not_sent_twice():
    state = make_state()
    state.fin_pending = True
    process_tx(state, mss=1000)
    assert process_tx(state, mss=1000) is None


def test_fin_ack_clears_fin_and_excludes_phantom_byte():
    state = make_state()
    state.tx_avail = 100
    state.fin_pending = True
    process_tx(state, mss=1000)
    summary = rx_summary(state, ack=1101)  # data + FIN
    result = process_rx(state, summary, b"")
    assert result.acked_bytes == 100  # phantom FIN byte excluded
    assert state.fin_seq is None
    assert not state.fin_pending
    assert state.tx_sent == 0


# ---------------------------------------------------------------- HC ----


def test_hc_tx_update_expands_window():
    state = make_state()
    result = process_hc(state, HostControlDescriptor(HC_TX_UPDATE, 0, value=500))
    assert state.tx_avail == 500
    assert result.fs_sendable == 500


def test_hc_rx_update_restores_space():
    state = make_state(rx_avail=0)
    process_hc(state, HostControlDescriptor(HC_RX_UPDATE, 0, value=1024))
    assert state.rx_avail == 1024


def test_hc_fin_arms_and_wakes_scheduler():
    state = make_state()
    result = process_hc(state, HostControlDescriptor(HC_FIN, 0))
    assert state.fin_pending
    assert result.fs_sendable == 1


def test_hc_retransmit_resets_go_back_n():
    state = make_state()
    process_hc(state, HostControlDescriptor(HC_TX_UPDATE, 0, value=3000))
    process_tx(state, mss=1000)
    process_tx(state, mss=1000)
    result = process_hc(state, HostControlDescriptor(HC_RETRANSMIT, 0))
    assert result.retransmitted == 2000
    assert state.seq == 1000
    assert state.tx_avail == 3000
    assert result.fs_sendable == 3000


def test_hc_retransmit_with_sent_fin():
    state = make_state()
    process_hc(state, HostControlDescriptor(HC_TX_UPDATE, 0, value=100, fin=True))
    assert state.fin_pending
    process_tx(state, mss=1000)
    assert state.fin_seq is not None
    process_hc(state, HostControlDescriptor(HC_RETRANSMIT, 0))
    assert state.fin_seq is None
    assert state.fin_pending
    assert state.tx_avail == 100
    result = process_tx(state, mss=1000)
    assert result.length == 100 and result.fin


def test_advertised_window_scaling():
    state = make_state(rx_avail=1 << 20)
    assert advertised_window(state) == (1 << 20) >> WINDOW_SCALE
    state.rx_avail = (0xFFFF << WINDOW_SCALE) * 2
    assert advertised_window(state) == 0xFFFF
