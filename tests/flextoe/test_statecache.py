"""Connection-state cache hierarchy (LMEM/CLS/EMEM) — the Fig 14 engine."""

from repro.flextoe.statecache import EmemStateCache, StateCache
from repro.nfp.memory import LAT_CLS, LAT_EMEM, LAT_EMEM_CACHE, LAT_LMEM


def test_lmem_hit_after_first_access():
    cache = StateCache(lmem_entries=4, cls_entries=64)
    first = cache.access_latency(1)
    assert first > LAT_LMEM  # cold: came from EMEM
    second = cache.access_latency(1)
    assert second == LAT_LMEM
    assert cache.hits_lmem == 1


def test_cls_hit_after_lmem_eviction():
    cache = StateCache(lmem_entries=2, cls_entries=64)
    cache.access_latency(1)
    cache.access_latency(2)
    cache.access_latency(3)  # evicts conn 1 from LMEM
    latency = cache.access_latency(1)
    # Back from CLS (plus possible writeback), not EMEM.
    assert LAT_CLS <= latency < LAT_EMEM
    assert cache.hits_cls >= 1


def test_direct_mapped_cls_collision_goes_to_emem():
    cache = StateCache(lmem_entries=1, cls_entries=4)
    cache.access_latency(0)
    cache.access_latency(4)  # same CLS slot (4 % 4 == 0)
    latency = cache.access_latency(0)  # evicted from both levels
    assert latency >= LAT_EMEM_CACHE
    assert cache.misses >= 2


def test_emem_cache_bounds_working_set():
    shared = EmemStateCache(capacity_records=4)
    assert shared.access(1) == LAT_EMEM  # cold
    assert shared.access(1) == LAT_EMEM_CACHE  # resident
    for conn in range(2, 7):
        shared.access(conn)  # pushes conn 1 out
    assert shared.access(1) == LAT_EMEM


def test_invalidate_removes_residency():
    cache = StateCache(lmem_entries=4, cls_entries=16)
    cache.access_latency(5)
    cache.access_latency(5)
    cache.invalidate(5)
    assert cache.access_latency(5) > LAT_LMEM


def test_small_working_set_all_lmem():
    cache = StateCache(lmem_entries=16, cls_entries=512)
    for _round in range(3):
        for conn in range(8):
            cache.access_latency(conn)
    # After warmup, everything hits local memory.
    assert cache.hit_rate_lmem > 0.5


def test_large_working_set_degrades_gracefully():
    cache = StateCache(lmem_entries=16, cls_entries=64)
    latencies = []
    for _round in range(2):
        for conn in range(256):
            latencies.append(cache.access_latency(conn))
    # Sustained misses: average latency lands in the EMEM regime.
    average = sum(latencies) / len(latencies)
    assert average > LAT_CLS
