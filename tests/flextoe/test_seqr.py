"""Sequencer and reorder buffer (GRO) semantics, incl. property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.flextoe import ReorderBuffer, Sequencer
from repro.flextoe.descriptors import SegWork, WORK_RX
from repro.sim import Simulator


def make_work(sequencer=None):
    work = SegWork(WORK_RX)
    if sequencer is not None:
        sequencer.assign(work)
    return work


def test_sequencer_is_dense():
    seqr = Sequencer()
    seqs = [seqr.assign(make_work()) for _ in range(10)]
    assert seqs == list(range(10))
    assert seqr.issued == 10


def test_in_order_passthrough():
    sim = Simulator()
    out = []
    rob = ReorderBuffer(sim, output_fn=out.append)
    seqr = Sequencer()
    for _ in range(5):
        rob.offer(make_work(seqr))
    assert [w.pipeline_seq for w in out] == [0, 1, 2, 3, 4]
    assert rob.out_of_order_arrivals == 0


def test_out_of_order_buffered_and_released():
    sim = Simulator()
    out = []
    rob = ReorderBuffer(sim, output_fn=out.append)
    seqr = Sequencer()
    works = [make_work(seqr) for _ in range(4)]
    rob.offer(works[2])
    rob.offer(works[1])
    assert out == []
    assert rob.buffered == 2
    rob.offer(works[0])
    assert [w.pipeline_seq for w in out] == [0, 1, 2]
    rob.offer(works[3])
    assert len(out) == 4
    assert rob.out_of_order_arrivals == 2
    # Peak counts the transient insert before draining: 2 buffered + the
    # hole-filling arrival.
    assert rob.buffered_peak == 3


def test_skip_unblocks_stream():
    sim = Simulator()
    out = []
    rob = ReorderBuffer(sim, output_fn=out.append)
    seqr = Sequencer()
    works = [make_work(seqr) for _ in range(3)]
    rob.offer(works[1])
    rob.offer(works[2])
    assert out == []
    rob.skip(works[0].pipeline_seq)  # dropped in pre-processing
    assert [w.pipeline_seq for w in out] == [1, 2]


def test_skip_already_released_is_noop():
    sim = Simulator()
    out = []
    rob = ReorderBuffer(sim, output_fn=out.append)
    seqr = Sequencer()
    work = make_work(seqr)
    rob.offer(work)
    rob.skip(work.pipeline_seq)  # late skip
    assert rob.expected == 1


def test_duplicate_sequence_rejected():
    sim = Simulator()
    rob = ReorderBuffer(sim, output_fn=lambda w: None)
    seqr = Sequencer()
    work = make_work(seqr)
    rob.offer(work)
    with pytest.raises(ValueError):
        rob.offer(work)


def test_unsequenced_work_rejected():
    sim = Simulator()
    rob = ReorderBuffer(sim, output_fn=lambda w: None)
    with pytest.raises(ValueError):
        rob.offer(make_work())


@given(st.permutations(range(12)), st.sets(st.integers(min_value=0, max_value=11)))
def test_any_permutation_with_drops_releases_in_order(order, drops):
    """Property: whatever arrival order and drop set, released works come
    out in strictly ascending sequence and nothing is lost."""
    sim = Simulator()
    out = []
    rob = ReorderBuffer(sim, output_fn=out.append)
    works = {}
    seqr = Sequencer()
    for _ in range(12):
        work = make_work(seqr)
        works[work.pipeline_seq] = work
    for seq in order:
        if seq in drops:
            rob.skip(seq)
        else:
            rob.offer(works[seq])
    released = [w.pipeline_seq for w in out]
    assert released == sorted(set(range(12)) - drops)


def test_output_ring_force_put_when_full():
    from repro.nfp.queues import ClsRing

    sim = Simulator()
    ring = ClsRing(sim, capacity=2)
    rob = ReorderBuffer(sim, output_ring=ring)
    seqr = Sequencer()
    for _ in range(5):
        rob.offer(make_work(seqr))
    # All five landed despite the capacity-2 ring (overshoot allowed to
    # avoid reorder deadlock).
    assert len(ring) == 5
