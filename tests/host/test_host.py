"""Host CPU accounting, hugepage pool, machine assembly."""

import pytest

from repro.host import CAT_APP, CAT_SOCKETS, CAT_TCP, CpuCore, CycleAccounting, HostMemory, Machine
from repro.host.memory import HUGEPAGE_SIZE, HugepagePool
from repro.sim import Simulator


def test_core_charges_categories():
    sim = Simulator()
    core = CpuCore(sim, "c0")

    def work(sim):
        yield from core.run(2000, CAT_APP)  # 1 us at 2 GHz
        yield from core.run(1000, CAT_TCP)

    sim.process(work(sim))
    sim.run()
    assert sim.now == 1500
    assert core.accounting.cycles[CAT_APP] == 2000
    assert core.accounting.cycles[CAT_TCP] == 1000
    assert core.accounting.total() == 3000


def test_core_serializes_two_threads():
    sim = Simulator()
    core = CpuCore(sim, "c0")
    finish = []

    def work(sim):
        yield from core.run(2000, CAT_APP)
        finish.append(sim.now)

    sim.process(work(sim))
    sim.process(work(sim))
    sim.run()
    assert finish == [1000, 2000]


def test_accounting_breakdown_percentages():
    acct = CycleAccounting()
    acct.charge(CAT_APP, 750)
    acct.charge(CAT_SOCKETS, 250)
    breakdown = acct.breakdown()
    assert breakdown[CAT_APP] == (750, 75.0)
    assert breakdown[CAT_SOCKETS] == (250, 25.0)


def test_accounting_merge():
    a = CycleAccounting()
    b = CycleAccounting()
    a.charge(CAT_APP, 10)
    b.charge(CAT_APP, 5)
    b.charge("custom", 3)
    a.merge(b)
    assert a.cycles[CAT_APP] == 15
    assert a.cycles["custom"] == 3


def test_hugepage_alloc_alignment_and_exhaustion():
    pool = HugepagePool(n_pages=1)
    region = pool.alloc(100, align=64)
    assert region.addr % 64 == 0
    region2 = pool.alloc(100, align=64)
    assert region2.addr == region.addr + 128  # 100 rounded up to 128
    with pytest.raises(MemoryError):
        pool.alloc(HUGEPAGE_SIZE)


def test_region_read_write_bounds():
    mem = HostMemory()
    region = mem.alloc(64)
    region.write(0, b"hello")
    assert region.read(0, 5) == b"hello"
    with pytest.raises(IndexError):
        region.write(60, b"toolong")
    with pytest.raises(IndexError):
        region.read(60, 10)


def test_region_lookup_by_address():
    mem = HostMemory()
    region = mem.alloc(128)
    found, offset = mem.region_at(region.addr + 32)
    assert found is region
    assert offset == 32
    with pytest.raises(KeyError):
        mem.region_at(0xDEAD)


def test_machine_aggregate_accounting():
    sim = Simulator()
    machine = Machine(sim, "srv", n_cores=2)

    def work(sim, core):
        yield from core.run(100, CAT_APP)

    sim.process(work(sim, machine.cores[0]))
    sim.process(work(sim, machine.cores[1]))
    sim.run()
    assert machine.aggregate_accounting().cycles[CAT_APP] == 200


def test_core_block_returns_value():
    sim = Simulator()
    core = CpuCore(sim, "c0")
    out = []

    def work(sim):
        value = yield from core.block(sim.timeout(500, value="io"))
        out.append((sim.now, value))

    sim.process(work(sim))
    sim.run()
    assert out == [(500, "io")]
