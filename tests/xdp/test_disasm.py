"""Disassembler round trips: asm(disasm(asm(text))) == asm(text)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.xdp import assemble
from repro.xdp.disasm import disassemble, disassemble_insn
from repro.xdp.builtins.firewall import FIREWALL_ASM
from repro.xdp.builtins.filter import CLASSIFIER_ASM


def roundtrip(text):
    program = assemble(text)
    text2 = disassemble(program)
    program2 = assemble(text2)
    assert len(program) == len(program2)
    for a, b in zip(program, program2):
        assert (a.op, a.dst, a.src, a.off, a.imm) == (b.op, b.dst, b.src, b.off, b.imm)
    return program


def test_roundtrip_firewall():
    roundtrip(FIREWALL_ASM)


def test_roundtrip_classifier():
    roundtrip(CLASSIFIER_ASM)


def test_disassemble_single_forms():
    program = assemble(
        """
        mov r1, 5
        mov r2, r1
        add32 r2, 7
        neg r2
        be16 r2
        lddw r3, 0xdeadbeef
        ldxw r4, [r1+12]
        stxb [r1-3], r4
        stdw [r10-8], 99
        jne r4, r2, 1
        ja 0
        call 1
        exit
        """
    )
    lines = disassemble(program).splitlines()
    assert lines[0] == "mov r1, 5"
    assert lines[1] == "mov r2, r1"
    assert lines[3] == "neg r2"
    assert lines[6] == "ldxw r4, [r1+12]"
    assert lines[7] == "stxb [r1-3], r4"
    assert lines[-1] == "exit"


regs = st.integers(min_value=0, max_value=10)
imms = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
offs = st.integers(min_value=-64, max_value=64)

alu_ops = st.sampled_from(["mov", "add", "sub", "mul", "and", "or", "xor", "lsh", "rsh", "add32"])
jmp_ops = st.sampled_from(["jeq", "jne", "jgt", "jge", "jlt", "jle", "jset"])
mem_sizes = st.sampled_from(["b", "h", "w", "dw"])


@given(alu_ops, regs, st.one_of(regs.map(lambda r: "r%d" % r), imms.map(str)))
def test_roundtrip_alu_any(op, dst, src):
    text = "{} r{}, {}\nexit".format(op, dst, src)
    roundtrip(text)


@given(jmp_ops, regs, imms, st.integers(min_value=0, max_value=5))
def test_roundtrip_jump_any(op, dst, imm, off):
    text = "{} r{}, {}, {}\nexit".format(op, dst, imm, off)
    roundtrip(text)


@given(mem_sizes, regs, regs, offs)
def test_roundtrip_loads_stores(size, dst, src, off)  :
    text = "ldx{sz} r{d}, [r{s}{o:+d}]\nstx{sz} [r{s}{o:+d}], r{d}\nexit".format(
        sz=size, d=dst, s=src, o=off
    )
    roundtrip(text)
