"""Differential testing: random verified programs, interpreter vs JIT.

Hypothesis generates structured random eBPF programs (bounds-checked
packet loads, stack traffic, ALU soup, forward branches, guarded
division, optional hash-map lookup/writeback), assembles and verifies
them, then runs the same packets through :class:`BpfVm` and the
proof-carrying JIT. Return codes, executed-instruction counts, packet
mutations, map contents, and fault behavior must be identical — the
JIT's whole claim is bit-level equivalence with checks removed.
"""

import struct

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.analysis.verifier import VerifierError
from repro.xdp.asm import assemble
from repro.xdp.jit import compile_program
from repro.xdp.maps import BpfHashMap
from repro.xdp.vm import BpfVm, VmFault

MAP_FD = 1

_ALU_OPS = ("add", "sub", "mul", "and", "or", "xor", "lsh", "rsh", "arsh")
_JUMP_OPS = ("jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jslt")
_SIZES = (("b", 1), ("h", 2), ("w", 4), ("dw", 8))

# Registers the generated body may freely clobber. r6/r7 hold
# data/data_end; r8 is the bounds-check scratch; r9 stays a spare.
_BODY_REGS = (0, 2, 3, 4, 5)


@st.composite
def statement(draw, index, n_body):
    kind = draw(
        st.sampled_from(
            ["alu", "alu", "alu", "pktload", "stackstore", "stackload", "jump", "div"]
        )
    )
    dst = draw(st.sampled_from(_BODY_REGS))
    if kind == "alu":
        op = draw(st.sampled_from(_ALU_OPS))
        wide = draw(st.booleans())
        suffix = "" if wide else "32"
        if op in ("lsh", "rsh", "arsh"):
            return ["{}{} r{}, {}".format(op, suffix, dst, draw(st.integers(0, 31)))]
        if draw(st.booleans()):
            src = draw(st.sampled_from(_BODY_REGS))
            return ["{}{} r{}, r{}".format(op, suffix, dst, src)]
        imm = draw(st.integers(-(2**31), 2**31 - 1))
        return ["{}{} r{}, {}".format(op, suffix, dst, imm)]
    if kind == "pktload":
        size, nbytes = draw(st.sampled_from(_SIZES))
        off = draw(st.integers(0, 16 - nbytes))
        return ["ldx{} r{}, [r6+{}]".format(size, dst, off)]
    if kind == "stackstore":
        size, nbytes = draw(st.sampled_from(_SIZES))
        off = draw(st.sampled_from([o for o in (8, 16) if o >= nbytes]))
        return ["stx{} [r10-{}], r{}".format(size, off, dst)]
    if kind == "stackload":
        # The prologue initializes [r10-8, r10) and [r10-16, r10-8).
        size, nbytes = draw(st.sampled_from(_SIZES))
        off = draw(st.sampled_from([o for o in (8, 16) if o >= nbytes]))
        return ["ldx{} r{}, [r10-{}]".format(size, dst, off)]
    if kind == "jump":
        op = draw(st.sampled_from(_JUMP_OPS))
        target = draw(st.integers(index + 1, n_body))
        label = "b{}".format(target) if target < n_body else "epi"
        if draw(st.booleans()):
            src = draw(st.sampled_from(_BODY_REGS))
            return ["{} r{}, r{}, {}".format(op, dst, src, label)]
        imm = draw(st.integers(-(2**31), 2**31 - 1))
        return ["{} r{}, {}, {}".format(op, dst, imm, label)]
    # div/mod by a body register: the divisor range usually includes
    # zero, so the guard is retained and zero divisors must fault
    # identically on both backends.
    op = draw(st.sampled_from(["div", "mod", "div32", "mod32"]))
    src = draw(st.sampled_from(_BODY_REGS))
    return ["{} r{}, r{}".format(op, dst, src)]


@st.composite
def program_text(draw):
    n_body = draw(st.integers(1, 12))
    inits = [draw(st.integers(0, 2**32 - 1)) for _ in range(len(_BODY_REGS))]
    use_map = draw(st.booleans())
    lines = [
        "ldxdw r6, [r1+0]",
        "ldxdw r7, [r1+8]",
        "mov r8, r6",
        "add r8, 16",
        "jgt r8, r7, out",
    ]
    for reg, value in zip(_BODY_REGS, inits):
        lines.append("mov r{}, {}".format(reg, value))
    lines.append("stxdw [r10-8], r0")
    lines.append("stxdw [r10-16], r2")
    for i in range(n_body):
        lines.append("b{}:".format(i))
        lines.extend(draw(statement(i, n_body)))
    lines.append("epi:")
    if use_map:
        # Lookup with the low word of the stack slot as key; increment
        # the first value byte on a hit. r1-r5 are verifier-clobbered
        # by the call, so re-init what the epilogue needs.
        lines += [
            "lddw r1, map:{}".format(MAP_FD),
            "mov r2, r10",
            "sub r2, 8",
            "call 1",
            "jeq r0, 0, miss",
            "ldxb r3, [r0+0]",
            "add r3, 1",
            "stxb [r0+0], r3",
            "miss:",
        ]
    lines += ["mov r0, 7", "exit", "out:", "mov r0, 3", "exit"]
    # The map key is the prologue-stored r0 init value's low 4 bytes;
    # seed a hit for roughly half the programs.
    seed_hit = draw(st.booleans())
    return "\n".join(lines), inits[0], use_map, seed_hit


def _build(key_word, use_map, seed_hit):
    maps = {}
    if use_map:
        table = BpfHashMap(4, 8, 16, name="parity")
        if seed_hit:
            table.update(struct.pack("<I", key_word & 0xFFFFFFFF), b"\x41" + b"\x00" * 7)
        table.update(struct.pack("<I", 0xDEADBEEF), b"\x99" + b"\x00" * 7)
        maps[MAP_FD] = table
    return maps


def _run(backend, packet):
    try:
        result, executed = backend.run(packet)
        return ("ok", result, executed, bytes(packet))
    except VmFault as fault:
        return ("fault", str(fault), bytes(packet))


def _map_dump(maps):
    if MAP_FD not in maps:
        return None
    return sorted(maps[MAP_FD].items()) if hasattr(maps[MAP_FD], "items") else None


@settings(max_examples=60, deadline=None)
@given(data=program_text(), packet=st.binary(min_size=0, max_size=48))
def test_random_verified_programs_agree(data, packet):
    text, key_word, use_map, seed_hit = data
    program = assemble(text)
    maps_vm = _build(key_word, use_map, seed_hit)
    maps_jit = _build(key_word, use_map, seed_hit)
    try:
        vm = BpfVm(program, maps_vm)
        jit = compile_program(program, maps_jit)
    except VerifierError:
        hypothesis.assume(False)
        return

    out_vm = _run(vm, bytearray(packet))
    out_jit = _run(jit, bytearray(packet))
    assert out_jit == out_vm

    if use_map:
        dump = lambda m: sorted(
            (bytes(k), bytes(v)) for k, v in _iter_map(m[MAP_FD])
        )
        assert dump(maps_jit) == dump(maps_vm)


def _iter_map(table):
    # BpfHashMap internal storage: fall back over plausible attribute
    # names so the parity check survives representation changes.
    for attr in ("entries", "table", "_entries", "_table", "store", "data"):
        storage = getattr(table, attr, None)
        if isinstance(storage, dict):
            return storage.items()
    raise AttributeError("cannot introspect BpfHashMap storage")
