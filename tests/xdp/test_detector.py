"""The in-NIC attack detector: per-source features, threshold verdicts,
rate decay, and interpreter/JIT agreement."""

from repro.analysis.verifier import verify
from repro.flextoe.module import ACTION_DROP, ACTION_PASS
from repro.proto import FLAG_ACK, FLAG_RST, FLAG_SYN, make_tcp_frame, str_to_ip
from repro.xdp import XdpAdapter
from repro.xdp.builtins import (
    decay_features,
    detector_asm_program,
    read_features,
    set_thresholds,
)
from repro.xdp.jit import compile_program

ATTACKER = str_to_ip("10.0.200.1")
BENIGN = str_to_ip("10.0.0.2")
SERVER = str_to_ip("10.0.0.1")


def frame(src_ip, flags, payload=b"", sport=40000):
    return make_tcp_frame(0xA, 0xB, src_ip, SERVER, sport, 7000, flags=flags, payload=payload)


def build(jit=None, **thresholds):
    program, maps = detector_asm_program(max_sources=64)
    if thresholds:
        set_thresholds(maps, **thresholds)
    adapter = XdpAdapter(program=program, maps=maps, jit=jit)
    return adapter, maps


def test_detector_verifies():
    program, maps = detector_asm_program()
    verify(program, maps)


def test_syn_flood_threshold():
    adapter, maps = build(syn_limit=5)
    # The first syn_limit pure SYNs pass, then the source is banned.
    verdicts = [adapter.handle(frame(ATTACKER, FLAG_SYN), None) for _ in range(10)]
    assert verdicts[:5] == [ACTION_PASS] * 5
    assert verdicts[5:] == [ACTION_DROP] * 5
    # Features keep counting dropped packets — the ban is sticky.
    pkts, _bytes, syns, _rsts = read_features(maps, ATTACKER)
    assert pkts == 10
    assert syns == 10
    # A different source is unaffected.
    assert adapter.handle(frame(BENIGN, FLAG_SYN), None) == ACTION_PASS


def test_syn_ack_does_not_count_as_syn():
    adapter, maps = build(syn_limit=2)
    for _ in range(6):
        assert adapter.handle(frame(BENIGN, FLAG_SYN | FLAG_ACK), None) == ACTION_PASS
    _pkts, _bytes, syns, _rsts = read_features(maps, BENIGN)
    assert syns == 0


def test_rst_storm_threshold():
    adapter, maps = build(rst_limit=3)
    verdicts = [adapter.handle(frame(ATTACKER, FLAG_RST | FLAG_ACK), None) for _ in range(6)]
    assert verdicts[:3] == [ACTION_PASS] * 3
    assert verdicts[3:] == [ACTION_DROP] * 3


def test_flagless_junk_always_dropped():
    # No thresholds programmed at all: the protocol-validity rule alone
    # kills flag-less segments (the incast junk profile).
    adapter, maps = build()
    assert adapter.handle(frame(ATTACKER, 0, payload=b"j" * 64), None) == ACTION_DROP
    # Normal traffic still passes with zeroed thresholds.
    assert adapter.handle(frame(BENIGN, FLAG_ACK, payload=b"d" * 64), None) == ACTION_PASS
    assert adapter.handle(frame(BENIGN, FLAG_SYN), None) == ACTION_PASS


def test_runt_flood_rule():
    adapter, maps = build(pkt_floor=4, min_bpp=100)
    # Tiny bare-ACK runts: once past the packet floor, avg bytes/packet
    # (40B of IP header + nothing) sits below min_bpp -> drop.
    verdicts = [adapter.handle(frame(ATTACKER, FLAG_ACK), None) for _ in range(8)]
    assert ACTION_DROP in verdicts
    assert all(v == ACTION_DROP for v in verdicts[5:])
    # Full-size segments keep a healthy bytes/packet and pass.
    big = [adapter.handle(frame(BENIGN, FLAG_ACK, payload=b"p" * 1000), None) for _ in range(8)]
    assert big == [ACTION_PASS] * 8


def test_decay_unbans_a_stopped_source():
    adapter, maps = build(syn_limit=4)
    for _ in range(8):
        adapter.handle(frame(ATTACKER, FLAG_SYN), None)
    assert adapter.handle(frame(ATTACKER, FLAG_SYN), None) == ACTION_DROP
    # Two halvings: 9 -> 4 -> 2 SYNs, back under the limit.
    decay_features(maps)
    decay_features(maps)
    _pkts, _bytes, syns, _rsts = read_features(maps, ATTACKER)
    assert syns <= 4
    assert adapter.handle(frame(ATTACKER, FLAG_SYN), None) == ACTION_PASS


def test_jit_matches_interpreter():
    program, maps = detector_asm_program(max_sources=64)
    set_thresholds(maps, syn_limit=3, rst_limit=3, pkt_floor=4, min_bpp=100)
    jit = compile_program(program, maps)
    interp, imaps = build(syn_limit=3, rst_limit=3, pkt_floor=4, min_bpp=100)
    jitted = XdpAdapter(program=program, maps=maps, jit=jit)
    cases = (
        [frame(ATTACKER, FLAG_SYN) for _ in range(6)]
        + [frame(ATTACKER, FLAG_RST | FLAG_ACK) for _ in range(6)]
        + [frame(BENIGN, 0)]
        + [frame(BENIGN, FLAG_ACK, payload=b"q" * 64) for _ in range(6)]
    )
    for case in cases:
        assert interp.handle(case, None) == jitted.handle(case, None)


def test_non_tcp_and_short_frames_pass():
    # Anything the program cannot parse as IPv4/TCP must pass — the
    # detector is a bouncer, not a firewall for unknown protocols.
    from repro.proto.packet import EthernetHeader, Frame

    adapter, maps = build(syn_limit=1)
    eth = EthernetHeader(dst=0xB, src=0xA, ethertype=0x0806)
    assert adapter.handle(Frame(eth), None) == ACTION_PASS
