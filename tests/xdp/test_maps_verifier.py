"""BPF maps and the program verifier."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xdp import BpfArrayMap, BpfHashMap, BpfLruHashMap, VerifierError, assemble, verify
from repro.xdp.maps import BpfMapError


def test_hash_map_crud():
    table = BpfHashMap(4, 8, 4)
    table.update(b"AAAA", b"12345678")
    assert bytes(table.lookup(b"AAAA")) == b"12345678"
    assert table.lookup(b"BBBB") is None
    assert table.delete(b"AAAA")
    assert not table.delete(b"AAAA")


def test_hash_map_size_checks():
    table = BpfHashMap(4, 8, 4)
    with pytest.raises(BpfMapError):
        table.update(b"TOO-LONG", b"12345678")
    with pytest.raises(BpfMapError):
        table.update(b"AAAA", b"short")
    with pytest.raises(BpfMapError):
        table.lookup(b"xx")


def test_hash_map_capacity():
    table = BpfHashMap(1, 1, 2)
    table.update(b"a", b"1")
    table.update(b"b", b"2")
    with pytest.raises(BpfMapError):
        table.update(b"c", b"3")
    table.update(b"a", b"9")  # overwriting existing is fine


def test_lru_map_evicts_oldest():
    table = BpfLruHashMap(1, 1, 2)
    table.update(b"a", b"1")
    table.update(b"b", b"2")
    table.lookup(b"a")  # refresh
    table.update(b"c", b"3")
    assert table.lookup(b"b") is None
    assert table.lookup(b"a") is not None


def test_array_map_semantics():
    array = BpfArrayMap(8, 4)
    key = (2).to_bytes(4, "little")
    assert bytes(array.lookup(key)) == b"\x00" * 8
    array.update(key, b"12345678")
    assert bytes(array.lookup(key)) == b"12345678"
    assert array.delete(key)  # zeroes
    assert bytes(array.lookup(key)) == b"\x00" * 8
    assert array.lookup((9).to_bytes(4, "little")) is None


@given(st.dictionaries(st.binary(min_size=4, max_size=4), st.binary(min_size=8, max_size=8), max_size=32))
def test_hash_map_model_equivalence(model):
    table = BpfHashMap(4, 8, 64)
    for key, value in model.items():
        table.update(key, value)
    for key, value in model.items():
        assert bytes(table.lookup(key)) == value
    assert len(table) == len(model)


def test_verifier_accepts_valid_program():
    program = assemble("mov r0, 1\nexit")
    assert verify(program)


def test_verifier_rejects_empty_and_no_exit():
    with pytest.raises(VerifierError):
        verify([])
    with pytest.raises(VerifierError):
        verify(assemble("mov r0, 1\nja 0"))


def test_verifier_rejects_backward_jump():
    from repro.xdp.vm import Insn

    with pytest.raises(VerifierError):
        verify([Insn("mov.imm", dst=0, imm=1), Insn("ja", off=-2), Insn("exit")])


def test_verifier_rejects_unknown_helper():
    with pytest.raises(VerifierError):
        verify(assemble("mov r1, 0\nmov r2, 0\ncall 77\nexit"))


def test_verifier_rejects_uninitialized_read():
    with pytest.raises(VerifierError):
        verify(assemble("add r0, r5\nexit"))
    with pytest.raises(VerifierError):
        verify(assemble("ldxw r0, [r4+0]\nexit"))


def test_verifier_tracks_helper_clobbers():
    # r2 is clobbered by the call; using it afterwards is rejected.
    source = """
        mov r0, 1
        stxw [r10-4], r0
        lddw r1, map:1
        mov r2, r10
        sub r2, 4
        call 1
        mov r0, r2
        exit
    """
    with pytest.raises(VerifierError):
        verify(assemble(source))


def test_verifier_rejects_out_of_range_jump():
    with pytest.raises(VerifierError):
        verify(assemble("mov r0, 1\nja 100\nexit"))


def test_verifier_rejects_jump_one_past_the_end():
    # Regression: the straight-line verifier bounds-checked targets with
    # ``target <= len(program)``, accepting a conditional jump to the
    # index one past the last instruction — a path that falls off the
    # end without ever reaching exit.
    from repro.xdp.vm import Insn

    program = [
        Insn("jeq.imm", dst=1, imm=0, off=2),  # target 3 == len(program)
        Insn("mov.imm", dst=0, imm=1),
        Insn("exit"),
    ]
    with pytest.raises(VerifierError, match="leaves the program|never reaches exit"):
        verify(program)


def test_verifier_rejects_one_armed_initialization_at_join():
    # Regression: the straight-line verifier scanned instructions in
    # program order, so a register initialized on only one branch arm
    # looked initialized after the join. The dataflow meet must reject
    # the read of r2 on the path that skipped ``mov r2, 7``.
    source = """
        mov r0, 1
        jeq r0, 0, skip
        mov r2, 7
    skip:
        add r0, r2
        exit
    """
    with pytest.raises(VerifierError, match="uninitialized r2"):
        verify(assemble(source))


def test_verifier_accepts_both_armed_initialization_at_join():
    # The sound dual: when every path initializes r2, the meet keeps it.
    source = """
        mov r0, 1
        jeq r0, 0, other
        mov r2, 7
        ja done
    other:
        mov r2, 9
    done:
        add r0, r2
        exit
    """
    assert verify(assemble(source))
