"""eBPF VM semantics: ALU, memory, jumps, helpers, faults."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xdp import BpfHashMap, BpfVm, VmFault, assemble
from repro.xdp.vm import MASK64

u64 = st.integers(min_value=0, max_value=MASK64)
u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


def run(source, packet=b"", maps=None):
    vm = BpfVm(assemble(source), maps)
    data = bytearray(packet)
    result, executed = vm.run(data)
    return result, data, executed


def test_mov_and_exit():
    result, _, executed = run("mov r0, 42\nexit")
    assert result == 42
    assert executed == 2


@given(u64, u64)
def test_add_wraps_64(a, b):
    source = "lddw r0, {}\nlddw r1, {}\nadd r0, r1\nexit".format(a, b)
    result, _, _ = run(source)
    assert result == (a + b) & MASK64


@given(u64, u64)
def test_sub_wraps_64(a, b):
    source = "lddw r0, {}\nlddw r1, {}\nsub r0, r1\nexit".format(a, b)
    result, _, _ = run(source)
    assert result == (a - b) & MASK64


@given(u32, u32)
def test_alu32_masks_result(a, b):
    source = "lddw r0, {}\nlddw r1, {}\nadd32 r0, r1\nexit".format(a, b)
    result, _, _ = run(source)
    assert result == (a + b) & ((1 << 32) - 1)


@given(u64, st.integers(min_value=1, max_value=MASK64))
def test_div_mod(a, b):
    source = "lddw r0, {a}\nlddw r1, {b}\ndiv r0, r1\nexit".format(a=a, b=b)
    assert run(source)[0] == a // b
    source = "lddw r0, {a}\nlddw r1, {b}\nmod r0, r1\nexit".format(a=a, b=b)
    assert run(source)[0] == a % b


def test_division_by_zero_faults():
    with pytest.raises(VmFault):
        run("mov r0, 5\nmov r1, 0\ndiv r0, r1\nexit")


@given(st.integers(min_value=0, max_value=0xFFFF))
def test_be16_byteswap(value):
    source = "lddw r0, {}\nbe16 r0\nexit".format(value)
    result, _, _ = run(source)
    assert result == int.from_bytes(value.to_bytes(2, "little"), "big")


def test_packet_load_store():
    # Read byte 3, double it, write to byte 0.
    source = """
        ldxdw r2, [r1+0]
        ldxb r0, [r2+3]
        mul r0, 2
        stxb [r2+0], r0
        exit
    """
    result, data, _ = run(source, packet=b"\x00\x01\x02\x05")
    assert result == 10
    assert data[0] == 10


def test_packet_out_of_bounds_faults():
    with pytest.raises(VmFault):
        run("ldxdw r2, [r1+0]\nldxw r0, [r2+100]\nexit", packet=b"ab")


def test_stack_access():
    source = """
        mov r0, 77
        stxdw [r10-8], r0
        mov r0, 0
        ldxdw r0, [r10-8]
        exit
    """
    assert run(source)[0] == 77


def test_stack_overflow_faults():
    with pytest.raises(VmFault):
        run("mov r0, 1\nstxdw [r10-520], r0\nexit")


def test_conditional_jump_taken_and_not():
    source = """
        mov r0, 5
        jeq r0, 5, yes
        mov r0, 0
        exit
    yes:
        mov r0, 1
        exit
    """
    assert run(source)[0] == 1


def test_signed_jump():
    # -1 (as u64) is signed-less-than 1.
    source = """
        lddw r0, 0xffffffffffffffff
        jslt r0, 1, neg
        mov r0, 0
        exit
    neg:
        mov r0, 1
        exit
    """
    assert run(source)[0] == 1


def test_arsh_sign_extends():
    source = """
        lddw r0, 0xfffffffffffffff0
        arsh r0, 4
        exit
    """
    assert run(source)[0] == MASK64  # -16 >> 4 == -1


def test_instruction_budget_enforced():
    # A two-instruction infinite loop via ja with offset -1 is rejected
    # by the verifier, but the VM also self-protects.
    from repro.xdp.vm import Insn

    vm = BpfVm([Insn("ja", off=-1)])
    with pytest.raises(VmFault):
        vm.run(bytearray())


def test_map_lookup_update_delete_via_helpers():
    table = BpfHashMap(4, 8, 16)
    source = """
        ; key = 7 on the stack
        mov r0, 7
        stxw [r10-4], r0
        ; value = 99
        mov r0, 99
        stxdw [r10-16], r0
        ; update(map, key, value)
        lddw r1, map:5
        mov r2, r10
        sub r2, 4
        mov r3, r10
        sub r3, 16
        call 2
        ; lookup and read back
        lddw r1, map:5
        mov r2, r10
        sub r2, 4
        call 1
        jeq r0, 0, miss
        ldxdw r0, [r0+0]
        exit
    miss:
        lddw r0, 0xdead
        exit
    """
    result, _, _ = run(source, maps={5: table})
    assert result == 99
    assert len(table) == 1


def test_map_lookup_miss_returns_zero():
    table = BpfHashMap(4, 8, 16)
    source = """
        mov r0, 1
        stxw [r10-4], r0
        lddw r1, map:5
        mov r2, r10
        sub r2, 4
        call 1
        exit
    """
    assert run(source, maps={5: table})[0] == 0


def test_map_value_writes_persist():
    table = BpfHashMap(4, 8, 16)
    table.update(b"\x01\x00\x00\x00", (5).to_bytes(8, "little"))
    source = """
        mov r0, 1
        stxw [r10-4], r0
        lddw r1, map:9
        mov r2, r10
        sub r2, 4
        call 1
        jeq r0, 0, out
        ldxdw r5, [r0+0]
        add r5, 1
        stxdw [r0+0], r5
    out:
        mov r0, 0
        exit
    """
    vm = BpfVm(assemble(source), {9: table})
    vm.run(bytearray())
    vm.run(bytearray())
    stored = int.from_bytes(bytes(table.lookup(b"\x01\x00\x00\x00")), "little")
    assert stored == 7


def test_unknown_helper_faults():
    with pytest.raises(VmFault):
        run("mov r1, 0\nmov r2, 0\ncall 99\nexit")
