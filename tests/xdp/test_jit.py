"""The proof-carrying check-eliding JIT: builtin parity, elision
statistics, fault semantics, and the adapter/env wire-through."""

import struct

import pytest

from repro.flextoe.module import ACTION_DROP, ACTION_PASS, ACTION_TX
from repro.proto import FLAG_ACK, FLAG_FIN, make_tcp_frame, str_to_ip
from repro.xdp import BpfVm, VmFault, XdpAdapter, assemble, compile_program, jit_enabled_default
from repro.xdp.builtins import ASM_BUILTINS, SpliceEntry, splice_key
from repro.xdp.builtins.firewall import BLACKLIST_FD, block_ip
from repro.xdp.builtins.splice import SPLICE_FD
from repro.xdp.jit import JitError, JitProgram

BAD_IP = str_to_ip("10.0.0.66")
GOOD_IP = str_to_ip("10.0.0.1")
DST_IP = str_to_ip("10.0.0.2")


def wire(src_ip, sport=1000, dport=2000, flags=FLAG_ACK, payload=b"x" * 10):
    frame = make_tcp_frame(0xA, 0xB, src_ip, DST_IP, sport, dport, flags=flags, payload=payload)
    return bytearray(frame.pack())


def _fresh(name):
    return ASM_BUILTINS[name]()


def test_all_builtins_compile_with_high_elision():
    for name, factory in sorted(ASM_BUILTINS.items()):
        program, maps = factory()
        jit = compile_program(program, maps)
        assert isinstance(jit, JitProgram)
        stats = jit.stats
        total = stats["mem_elided"] + stats["mem_retained"]
        if total:
            assert stats["mem_elided"] / total >= 0.8, (name, stats)


def test_jit_matches_interpreter_on_firewall():
    program, maps = _fresh("firewall")
    block_ip(maps[BLACKLIST_FD], BAD_IP)
    vm = BpfVm(program, maps)
    jit = compile_program(program, maps)
    for packet in (wire(BAD_IP), wire(GOOD_IP), wire(GOOD_IP)[:20], bytearray(b"\x00" * 14)):
        a, b = bytearray(packet), bytearray(packet)
        assert jit.run(a) == vm.run(b)
        assert a == b


def test_jit_packet_mutation_matches_interpreter():
    # The vlan builtin rewrites the packet in place (PCP clear).
    program, maps = _fresh("vlan")
    vm = BpfVm(program, maps)
    jit = compile_program(program, maps)
    frame = make_tcp_frame(0xA, 0xB, GOOD_IP, DST_IP, 1000, 2000, flags=FLAG_ACK, payload=b"z" * 8)
    frame.eth.vlan = 7
    frame.eth.vlan_pcp = 5
    packet = bytearray(frame.pack())
    a, b = bytearray(packet), bytearray(packet)
    assert jit.run(a) == vm.run(b)
    assert a == b
    assert a != packet  # the PCP bits were actually cleared


def test_jit_splice_rewrites_and_map_state():
    def loaded():
        program, maps = _fresh("splice")
        entry = SpliceEntry(
            remote_mac=0x0000020000000000 | 0xC,
            remote_ip=str_to_ip("10.0.0.9"),
            local_port=4000,
            remote_port=5000,
            seq_delta=100,
            ack_delta=(1 << 32) - 100,
        )
        maps[SPLICE_FD].update(splice_key(GOOD_IP, DST_IP, 1000, 2000), entry.pack())
        return program, maps

    pv, mv = loaded()
    pj, mj = loaded()
    vm = BpfVm(pv, mv)
    jit = compile_program(pj, mj)
    for flags in (FLAG_ACK, FLAG_ACK | FLAG_FIN, FLAG_ACK):
        packet = wire(GOOD_IP, flags=flags)
        a, b = bytearray(packet), bytearray(packet)
        assert jit.run(a) == vm.run(b)
        assert a == b
    # FIN removed the entry from both maps identically.
    assert mv[SPLICE_FD].lookup(splice_key(GOOD_IP, DST_IP, 1000, 2000)) is None
    assert mj[SPLICE_FD].lookup(splice_key(GOOD_IP, DST_IP, 1000, 2000)) is None


def test_executed_counts_match_interpreter():
    program, maps = _fresh("filter")
    vm = BpfVm(program, maps)
    jit = compile_program(program, maps)
    for packet in (wire(GOOD_IP, dport=80), wire(GOOD_IP, dport=9999), bytearray(b"\x00" * 10)):
        _, executed_jit = jit.run(bytearray(packet))
        _, executed_vm = vm.run(bytearray(packet))
        assert executed_jit == executed_vm


def test_retained_guard_still_faults():
    # A verified program whose packet access is proven, run through raw
    # compile: faults must still match VmFault semantics on the
    # interpreter for identical inputs (here: none — both succeed), and
    # an unverifiable program must not compile at all.
    bad = assemble("ldxdw r0, [r1+100]\nexit")
    with pytest.raises(Exception):
        compile_program(bad, {})


def test_division_by_zero_faults_identically():
    program = assemble(
        """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        mov r4, r2
        add r4, 2
        jgt r4, r3, out
        ldxh r5, [r2+0]
        mov r0, 1000
        div r0, r5
        exit
    out:
        mov r0, 0
        exit
    """
    )
    vm = BpfVm(program, {})
    jit = compile_program(program, {})
    ok = bytearray(b"\x02\x00")  # halfword 2 -> 500
    assert jit.run(bytearray(ok)) == vm.run(bytearray(ok))
    zero = bytearray(b"\x00\x00")
    with pytest.raises(VmFault):
        vm.run(bytearray(zero))
    with pytest.raises(VmFault):
        jit.run(bytearray(zero))


def test_adapter_env_switch(monkeypatch):
    program, maps = _fresh("null")
    monkeypatch.delenv("REPRO_XDP_JIT", raising=False)
    assert jit_enabled_default() is True
    assert XdpAdapter(program=program, maps=maps).jit_enabled is True
    monkeypatch.setenv("REPRO_XDP_JIT", "0")
    assert jit_enabled_default() is False
    assert XdpAdapter(program=program, maps=maps).jit_enabled is False
    # Explicit argument beats the environment.
    assert XdpAdapter(program=program, maps=maps, jit=True).jit_enabled is True


def test_adapter_results_identical_across_backends():
    def run_all(jit):
        program, maps = _fresh("firewall")
        block_ip(maps[BLACKLIST_FD], BAD_IP)
        adapter = XdpAdapter(program=program, maps=maps, jit=jit)
        frames = [
            make_tcp_frame(0xA, 0xB, ip, DST_IP, 1000, 2000, flags=FLAG_ACK, payload=b"p")
            for ip in (BAD_IP, GOOD_IP, BAD_IP)
        ]
        actions = [adapter.handle(f, None) for f in frames]
        return actions, adapter.cost_cycles

    jit_actions, jit_cost = run_all(True)
    vm_actions, vm_cost = run_all(False)
    assert jit_actions == vm_actions == [ACTION_DROP, ACTION_PASS, ACTION_DROP]
    # Identical executed counts -> identical FPC cycle accounting.
    assert jit_cost == vm_cost


def test_jit_run_counters():
    program, maps = _fresh("null")
    jit = compile_program(program, maps)
    assert jit.runs == 0
    jit.run(bytearray(b"\x00" * 20))
    jit.run(bytearray(b"\x00" * 20))
    assert jit.runs == 2
    assert jit.total_instructions == 2 * 2  # mov + exit per run


def test_compile_rejects_tampered_certificate():
    from repro.analysis.certificate import ProofTable, export_certificate

    program, maps = _fresh("firewall")
    cert = export_certificate(program, maps)
    doc = cert.to_jsonable()
    doc["states"][5]["pkt_valid"] = (doc["states"][5]["pkt_valid"] or 0) + 64
    with pytest.raises(Exception):
        compile_program(program, maps, cert=ProofTable.from_jsonable(doc))
