"""Builtin XDP modules: firewall (both flavors), classifier, vlan,
null, and connection splicing — standalone and on a live NIC."""

import struct

import pytest

from repro.flextoe.module import ACTION_DROP, ACTION_PASS, ACTION_REDIRECT, ACTION_TX, ModuleChain
from repro.proto import FLAG_ACK, FLAG_FIN, make_tcp_frame, str_to_ip
from repro.xdp import XdpAdapter
from repro.xdp.builtins import (
    FirewallProgram,
    FlowClassifierProgram,
    NullProgram,
    SpliceEntry,
    SpliceProgram,
    VlanStripProgram,
    classifier_asm_program,
    firewall_asm_program,
    null_asm_program,
    splice_key,
)
from repro.xdp.builtins.firewall import BLACKLIST_FD, block_ip
from repro.xdp.builtins.filter import COUNTERS_FD

BAD_IP = str_to_ip("10.0.0.66")
GOOD_IP = str_to_ip("10.0.0.1")
DST_IP = str_to_ip("10.0.0.2")


def frame_from(src_ip, sport=1000, dport=2000, flags=FLAG_ACK, payload=b"x" * 10, vlan=None):
    frame = make_tcp_frame(0xA, 0xB, src_ip, DST_IP, sport, dport, flags=flags, payload=payload)
    if vlan is not None:
        frame.eth.vlan = vlan
    return frame


def test_python_firewall():
    firewall = FirewallProgram()
    firewall.block(BAD_IP)
    adapter = XdpAdapter(py_program=firewall)
    assert adapter.handle(frame_from(BAD_IP), None) == ACTION_DROP
    assert adapter.handle(frame_from(GOOD_IP), None) == ACTION_PASS
    firewall.unblock(BAD_IP)
    assert adapter.handle(frame_from(BAD_IP), None) == ACTION_PASS
    assert firewall.dropped == 1


def test_asm_firewall_on_vm():
    program, maps = firewall_asm_program()
    adapter = XdpAdapter(program=program, maps=maps)
    block_ip(maps[BLACKLIST_FD], BAD_IP)
    assert adapter.handle(frame_from(BAD_IP), None) == ACTION_DROP
    assert adapter.handle(frame_from(GOOD_IP), None) == ACTION_PASS
    # Per-packet cost reflects executed instructions.
    assert adapter.cost_cycles > 10


def test_asm_classifier_counts_by_port():
    program, maps = classifier_asm_program()
    adapter = XdpAdapter(program=program, maps=maps)
    for _ in range(3):
        assert adapter.handle(frame_from(GOOD_IP, dport=2003), None) == ACTION_PASS
    counters = maps[COUNTERS_FD]
    slot = counters.lookup(struct.pack("<I", 2003 % 16))
    packets, _ = struct.unpack("<QQ", bytes(slot))
    assert packets == 3


def test_python_classifier_counts_bytes():
    classifier = FlowClassifierProgram()
    adapter = XdpAdapter(py_program=classifier)
    frame = frame_from(GOOD_IP, dport=5)
    adapter.handle(frame, None)
    packets, nbytes = classifier.read_class(5 % 16)
    assert packets == 1
    assert nbytes == frame.wire_len


def test_classifier_deny_port():
    classifier = FlowClassifierProgram(deny_port=31337)
    adapter = XdpAdapter(py_program=classifier)
    assert adapter.handle(frame_from(GOOD_IP, dport=31337), None) == ACTION_DROP


def test_vlan_strip():
    strip = VlanStripProgram()
    adapter = XdpAdapter(py_program=strip)
    frame = frame_from(GOOD_IP, vlan=42)
    assert adapter.handle(frame, None) == ACTION_PASS
    assert frame.eth.vlan is None
    assert strip.stripped == 1


def test_null_program_both_flavors():
    assert XdpAdapter(py_program=NullProgram()).handle(frame_from(GOOD_IP), None) == ACTION_PASS
    program, maps = null_asm_program()
    assert XdpAdapter(program=program, maps=maps).handle(frame_from(GOOD_IP), None) == ACTION_PASS


def test_splice_rewrites_and_tx():
    splice = SpliceProgram()
    key = splice_key(GOOD_IP, DST_IP, 1000, 2000)
    entry = SpliceEntry(
        remote_mac=0xCC,
        remote_ip=str_to_ip("10.0.0.3"),
        local_port=7777,
        remote_port=8888,
        seq_delta=1000,
        ack_delta=2000,
    )
    splice.install(key, entry)
    adapter = XdpAdapter(py_program=splice)
    frame = frame_from(GOOD_IP, sport=1000, dport=2000)
    frame.tcp.seq = 100
    frame.tcp.ack = 200
    assert adapter.handle(frame, None) == ACTION_TX
    assert frame.eth.dst == 0xCC
    assert frame.ip.dst == str_to_ip("10.0.0.3")
    assert (frame.tcp.sport, frame.tcp.dport) == (7777, 8888)
    assert frame.tcp.seq == 1100
    assert frame.tcp.ack == 2200


def test_splice_miss_passes_and_fin_removes():
    removed = []
    splice = SpliceProgram(control_plane_cb=lambda key, frame: removed.append(key))
    adapter = XdpAdapter(py_program=splice)
    assert adapter.handle(frame_from(GOOD_IP), None) == ACTION_PASS
    key = splice_key(GOOD_IP, DST_IP, 1000, 2000)
    splice.install(key, SpliceEntry(0xCC, 1, 1, 1, 0, 0))
    fin = frame_from(GOOD_IP, flags=FLAG_ACK | FLAG_FIN)
    assert adapter.handle(fin, None) == ACTION_REDIRECT
    assert removed == [key]
    assert splice.table.lookup(key) is None


def test_module_chain_stops_on_non_pass():
    firewall = FirewallProgram()
    firewall.block(BAD_IP)
    classifier = FlowClassifierProgram()
    chain = ModuleChain([XdpAdapter(py_program=firewall), XdpAdapter(py_program=classifier)])
    assert chain.run(frame_from(BAD_IP), None) == ACTION_DROP
    packets, _ = classifier.read_class(2000 % 16)
    assert packets == 0  # never reached


def test_splice_on_live_nic():
    """Frames spliced on the NIC bounce back out the MAC without any
    host interaction."""
    from repro.flextoe import FlexToeNic
    from repro.flextoe.config import PipelineConfig
    from repro.flextoe.module import ModuleChain
    from repro.net import Link, Port
    from repro.sim import Simulator

    sim = Simulator()
    splice = SpliceProgram()
    chain = ModuleChain([XdpAdapter(py_program=splice)])
    nic = FlexToeNic(sim, config=PipelineConfig.full(), ingress_modules=chain)
    wire_a = Port(sim, "a")
    nic_port = Port(sim, "nic")
    Link(sim, wire_a, nic_port, rate_bps=40_000_000_000, prop_delay_ns=100)
    nic.attach_port(nic_port)
    returned = []
    wire_a.receiver = lambda frame: returned.append(frame)

    key = splice_key(GOOD_IP, DST_IP, 1000, 2000)
    splice.install(key, SpliceEntry(0xDD, str_to_ip("10.9.9.9"), 5, 6, 10, 20))
    wire_a.send(frame_from(GOOD_IP, sport=1000, dport=2000))
    sim.run(until=1_000_000)
    assert len(returned) == 1
    assert returned[0].eth.dst == 0xDD
    assert splice.spliced == 1
    assert nic.datapath.stats.get("xdp_tx") == 1
