"""Header pack/unpack round trips for Ethernet, IPv4, TCP, and ARP."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.proto import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ArpHeader,
    EthernetHeader,
    FLAG_ACK,
    FLAG_SYN,
    Ipv4Header,
    TcpHeader,
    TcpOptions,
    checksum16,
    ip_to_str,
    mac_to_str,
    str_to_ip,
    str_to_mac,
)

macs = st.integers(min_value=0, max_value=(1 << 48) - 1)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1)
ports = st.integers(min_value=0, max_value=0xFFFF)
seqs = st.integers(min_value=0, max_value=0xFFFFFFFF)


def test_mac_string_roundtrip():
    assert mac_to_str(str_to_mac("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"
    assert str_to_mac("00:00:00:00:00:01") == 1


def test_ip_string_roundtrip():
    assert ip_to_str(str_to_ip("10.0.0.1")) == "10.0.0.1"
    assert str_to_ip("255.255.255.255") == 0xFFFFFFFF


def test_bad_addresses_rejected():
    with pytest.raises(ValueError):
        str_to_mac("aa:bb")
    with pytest.raises(ValueError):
        str_to_ip("1.2.3")
    with pytest.raises(ValueError):
        str_to_ip("1.2.3.999")


@given(macs, macs)
def test_ethernet_roundtrip(dst, src):
    header = EthernetHeader(dst=dst, src=src, ethertype=ETHERTYPE_IPV4)
    parsed, consumed = EthernetHeader.unpack(header.pack())
    assert consumed == 14
    assert parsed == header


@given(macs, macs, st.integers(min_value=0, max_value=0xFFF), st.integers(min_value=0, max_value=7))
def test_ethernet_vlan_roundtrip(dst, src, vlan, pcp):
    header = EthernetHeader(dst=dst, src=src, ethertype=ETHERTYPE_IPV4, vlan=vlan, vlan_pcp=pcp)
    parsed, consumed = EthernetHeader.unpack(header.pack())
    assert consumed == 18
    assert parsed == header
    assert parsed.wire_len == 18


def test_ethernet_truncated_rejected():
    with pytest.raises(ValueError):
        EthernetHeader.unpack(b"\x00" * 10)


@given(ips, ips, st.integers(min_value=20, max_value=1500), st.integers(min_value=0, max_value=3))
def test_ipv4_roundtrip(src, dst, total_len, ecn):
    header = Ipv4Header(src=src, dst=dst, total_len=total_len, ecn=ecn, ident=7, ttl=17)
    parsed, consumed = Ipv4Header.unpack(header.pack(), verify_checksum=True)
    assert consumed == 20
    assert (parsed.src, parsed.dst, parsed.total_len, parsed.ecn) == (src, dst, total_len, ecn)
    assert parsed.ident == 7
    assert parsed.ttl == 17


def test_ipv4_checksum_valid_on_wire():
    header = Ipv4Header(src=1, dst=2, total_len=40)
    assert checksum16(header.pack()) == 0


def test_ipv4_corrupt_checksum_detected():
    raw = bytearray(Ipv4Header(src=1, dst=2, total_len=40).pack())
    raw[10] ^= 0xFF
    with pytest.raises(ValueError):
        Ipv4Header.unpack(bytes(raw), verify_checksum=True)


def test_ipv4_ce_marking():
    header = Ipv4Header(src=1, dst=2, ecn=0b10)
    assert header.mark_ce()
    assert header.ce_marked
    not_ect = Ipv4Header(src=1, dst=2, ecn=0b00)
    assert not not_ect.mark_ce()
    assert not not_ect.ce_marked


@given(ports, ports, seqs, seqs, st.integers(min_value=0, max_value=0xFF))
def test_tcp_roundtrip_no_options(sport, dport, seq, ack, flags):
    header = TcpHeader(sport=sport, dport=dport, seq=seq, ack=ack, flags=flags, window=1024)
    parsed, consumed = TcpHeader.unpack(header.pack())
    assert consumed == 20
    assert (parsed.sport, parsed.dport, parsed.seq, parsed.ack) == (sport, dport, seq, ack)
    assert parsed.flags == flags
    assert parsed.window == 1024


@given(
    st.integers(min_value=536, max_value=9000),
    st.integers(min_value=0, max_value=14),
    seqs,
    seqs,
)
def test_tcp_options_roundtrip(mss, wscale, ts_val, ts_ecr):
    options = TcpOptions(mss=mss, wscale=wscale, ts_val=ts_val, ts_ecr=ts_ecr, sack_permitted=True)
    header = TcpHeader(1, 2, flags=FLAG_SYN, options=options)
    parsed, _ = TcpHeader.unpack(header.pack())
    assert parsed.options.mss == mss
    assert parsed.options.wscale == wscale
    assert parsed.options.ts_val == ts_val
    assert parsed.options.ts_ecr == ts_ecr
    assert parsed.options.sack_permitted


@given(st.lists(st.tuples(seqs, seqs), min_size=1, max_size=4))
def test_tcp_sack_blocks_roundtrip(blocks):
    options = TcpOptions(sack_blocks=blocks)
    header = TcpHeader(1, 2, flags=FLAG_ACK, options=options)
    parsed, _ = TcpHeader.unpack(header.pack())
    assert parsed.options.sack_blocks == blocks


def test_tcp_options_wire_len_is_padded():
    options = TcpOptions(wscale=7)  # 3 raw bytes -> padded to 4
    assert options.wire_len == 4
    assert len(options.pack()) == 4


def test_tcp_data_path_classification():
    from repro.proto import FLAG_FIN, FLAG_PSH, FLAG_RST

    assert TcpHeader(1, 2, flags=FLAG_ACK).is_data_path
    assert TcpHeader(1, 2, flags=FLAG_ACK | FLAG_PSH | FLAG_FIN).is_data_path
    assert not TcpHeader(1, 2, flags=FLAG_SYN).is_data_path
    assert not TcpHeader(1, 2, flags=FLAG_RST | FLAG_ACK).is_data_path


def test_tcp_checksum_with_pseudo_header():
    ip = Ipv4Header(src=str_to_ip("10.0.0.1"), dst=str_to_ip("10.0.0.2"))
    tcp = TcpHeader(1000, 2000, seq=1, ack=2, flags=FLAG_ACK)
    payload = b"hello world"
    pseudo = ip.pseudo_header(tcp.wire_len + len(payload))
    wire = tcp.pack(pseudo_header=pseudo, payload=payload)
    # Recomputing over pseudo-header + segment must give zero.
    assert checksum16(pseudo + wire + payload) == 0


def test_arp_request_reply_roundtrip():
    request = ArpHeader.request(sender_mac=0xAA, sender_ip=0x0A000001, target_ip=0x0A000002)
    parsed, consumed = ArpHeader.unpack(request.pack())
    assert consumed == request.wire_len
    assert parsed.op == 1
    assert parsed.target_ip == 0x0A000002
    reply = parsed.reply(responder_mac=0xBB)
    assert reply.op == 2
    assert reply.sender_mac == 0xBB
    assert reply.target_mac == 0xAA
    assert reply.sender_ip == 0x0A000002
    assert reply.target_ip == 0x0A000001


def test_ethertype_constants():
    assert ETHERTYPE_ARP == 0x0806
    assert ETHERTYPE_IPV4 == 0x0800
