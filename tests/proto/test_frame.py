"""Frame composition, serialization, and parse round trips."""

from hypothesis import given
from hypothesis import strategies as st

from repro.proto import (
    FLAG_ACK,
    FLAG_PSH,
    Frame,
    TcpOptions,
    make_tcp_frame,
    str_to_ip,
    str_to_mac,
)

MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")
IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")


def make(payload=b"x" * 10, **kwargs):
    return make_tcp_frame(MAC_A, MAC_B, IP_A, IP_B, 1111, 2222, payload=payload, **kwargs)


def test_wire_len_accounts_for_everything():
    frame = make(payload=b"a" * 100)
    assert frame.wire_len == 14 + 20 + 20 + 100


def test_wire_len_with_options():
    options = TcpOptions(ts_val=1, ts_ecr=2)
    frame = make(payload=b"", options=options)
    assert frame.wire_len == 14 + 20 + 20 + 12  # timestamps pad to 12


def test_pack_unpack_roundtrip():
    frame = make(payload=b"hello", seq=100, ack=200, flags=FLAG_ACK | FLAG_PSH)
    parsed = Frame.unpack(frame.pack())
    assert parsed.tcp.seq == 100
    assert parsed.tcp.ack == 200
    assert parsed.tcp.flags == FLAG_ACK | FLAG_PSH
    assert parsed.payload == b"hello"
    assert parsed.ip.src == IP_A
    assert parsed.eth.dst == MAC_B


@given(st.binary(min_size=0, max_size=512), st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_roundtrip_any_payload(payload, seq):
    frame = make(payload=payload, seq=seq, flags=FLAG_ACK)
    parsed = Frame.unpack(frame.pack())
    assert parsed.payload == payload
    assert parsed.tcp.seq == seq
    assert parsed.wire_len == frame.wire_len


def test_frame_ids_unique():
    a = make()
    b = make()
    assert a.frame_id != b.frame_id


def test_copy_isolates_headers_shares_payload():
    frame = make(payload=b"shared")
    frame.set_meta("flow", 3)
    dup = frame.copy()
    dup.tcp.seq = 999
    dup.set_meta("flow", 4)
    assert frame.tcp.seq != 999
    assert frame.get_meta("flow") == 3
    assert dup.payload is frame.payload


def test_meta_default():
    frame = make()
    assert frame.get_meta("missing") is None
    assert frame.get_meta("missing", 7) == 7


def test_arp_frame_roundtrip():
    from repro.proto import ArpHeader, ETHERTYPE_ARP, EthernetHeader

    eth = EthernetHeader(dst=(1 << 48) - 1, src=MAC_A, ethertype=ETHERTYPE_ARP)
    arp = ArpHeader.request(sender_mac=MAC_A, sender_ip=IP_A, target_ip=IP_B)
    frame = Frame(eth, arp=arp)
    parsed = Frame.unpack(frame.pack())
    assert parsed.arp is not None
    assert parsed.arp.target_ip == IP_B
    assert parsed.wire_len == frame.wire_len
