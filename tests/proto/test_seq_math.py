"""Sequence-number arithmetic (mod 2^32) properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.proto import seq_add, seq_after, seq_between, seq_diff, seq_lt, seq_lte

seqs = st.integers(min_value=0, max_value=0xFFFFFFFF)
small = st.integers(min_value=0, max_value=(1 << 30) - 1)


def test_wraparound_comparison():
    near_top = 0xFFFFFF00
    wrapped = 0x00000100
    assert seq_lt(near_top, wrapped)
    assert seq_after(wrapped, near_top)
    assert seq_diff(wrapped, near_top) == 0x200


@given(seqs, small)
def test_add_then_diff_inverts(seq, delta):
    assert seq_diff(seq_add(seq, delta), seq) == delta


@given(seqs, small)
def test_lt_consistent_with_diff(seq, delta):
    other = seq_add(seq, delta)
    if delta == 0:
        assert not seq_lt(seq, other)
        assert seq_lte(seq, other)
    else:
        assert seq_lt(seq, other)
        assert not seq_lt(other, seq)


@given(seqs, small, small)
def test_between_window(base, offset, width):
    high = seq_add(base, width)
    value = seq_add(base, offset)
    inside = offset < width
    assert seq_between(base, value, high) == inside


@given(seqs)
def test_reflexive(seq):
    assert seq_diff(seq, seq) == 0
    assert seq_lte(seq, seq)
    assert not seq_lt(seq, seq)
    assert not seq_after(seq, seq)
