"""Property-based TCP conformance suite (ISSUE 2 satellite).

Hypothesis drives :class:`repro.faults.SegmentMangler` over segmented
byte streams and feeds the mangled arrival order straight into
``proto_logic.process_rx`` — the atomic per-connection step that real
FlexTOE runs on the FPCs. The properties are the receiver's hard
contract, independent of timing:

* ``state.ack`` never regresses (mod-2^32 monotone),
* every NOTIFY_RX region is byte-exact against the original stream
  (reassembly never stitches payloads into the wrong place),
* corrupted segments are rejected by the checksum front-end and so
  never pollute the delivered stream,
* a final clean (go-back-N) pass always completes delivery — the
  receiver cannot wedge from any mangled prefix.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import SegmentMangler
from repro.flextoe import proto_logic
from repro.flextoe.descriptors import HeaderSummary
from repro.flextoe.state import ProtocolState
from repro.proto.checksum import checksum16
from repro.proto.tcp import seq_add, seq_diff

ISS = 0xFFFF_FF00  # initial sequence number near the wrap, on purpose
RX_BUF = 1 << 20


class Segment:
    """A wire segment as the conformance front-end sees it."""

    __slots__ = ("seq", "payload", "corrupted")

    def __init__(self, seq, payload, corrupted=False):
        self.seq = seq
        self.payload = payload
        self.corrupted = corrupted

    def wire_bytes(self):
        """Checksummed representation: seq header + payload."""
        return struct.pack(">I", self.seq) + self.payload


def segment_stream(message, mss):
    segments = []
    for off in range(0, len(message), mss):
        segments.append(Segment(seq_add(ISS, off), message[off : off + mss]))
    return segments


def corrupt_segment(segment):
    """Flip one payload byte — always detectable by the 16-bit internet
    checksum (a single-byte change alters exactly one checksum word)."""
    payload = bytearray(segment.payload)
    if payload:
        payload[len(payload) // 2] ^= 0x5A
    return Segment(segment.seq, bytes(payload), corrupted=True)


def checksum_ok(segment, expected_sum):
    """The pre-stage Val step: recompute and compare."""
    return checksum16(segment.wire_bytes()) == expected_sum[segment.seq, len(segment.payload)]


def fresh_receiver():
    return ProtocolState(seq=0, ack=ISS, rx_avail=RX_BUF)


def feed(state, segment, delivered, message):
    """Run one segment through process_rx, checking the invariants."""
    ack_before = state.ack
    summary = HeaderSummary(
        seq=segment.seq,
        ack=state.seq,
        flags=0,
        window=0xFFFF,
        payload_len=len(segment.payload),
    )
    result = proto_logic.process_rx(state, summary, segment.payload)
    assert seq_diff(state.ack, ack_before) >= 0, "ack regressed: {} -> {}".format(
        ack_before, state.ack
    )
    if result.payload_dest_pos is not None and result.payload:
        # Placement is in receive-stream coordinates (rx_pos starts at 0
        # == stream offset 0), so we can diff against the message.
        start = result.payload_dest_pos
        expected = message[start : start + len(result.payload)]
        assert result.payload == expected, (
            "payload placed at stream offset {} does not match the "
            "original bytes there".format(start)
        )
        for i, byte in enumerate(result.payload):
            delivered[start + i] = byte
    if result.notify_rx_len:
        # Everything the app is told about must already be delivered.
        lo = result.notify_rx_pos
        hi = lo + result.notify_rx_len
        assert all(delivered[i] is not None for i in range(lo, hi)), (
            "NOTIFY_RX covers bytes never placed: [{}, {})".format(lo, hi)
        )
    return result


mangle_params = st.fixed_dictionaries(
    {
        "loss_p": st.floats(min_value=0.0, max_value=0.4),
        "dup_p": st.floats(min_value=0.0, max_value=0.3),
        "reorder_p": st.floats(min_value=0.0, max_value=0.5),
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
    }
)


@settings(max_examples=60, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=6000),
    mss=st.sampled_from([100, 536, 1448]),
    params=mangle_params,
)
def test_mangled_arrival_reassembles_exactly(data, mss, params):
    """Loss/dup/reorder, then a clean go-back-N pass: exact delivery."""
    import random

    state = fresh_receiver()
    delivered = [None] * len(data)
    mangler = SegmentMangler(
        random.Random(params["seed"]),
        loss_p=params["loss_p"],
        dup_p=params["dup_p"],
        reorder_p=params["reorder_p"],
    )
    for segment in mangler.mangle(segment_stream(data, mss)):
        feed(state, segment, delivered, data)

    # Go-back-N recovery: the sender retransmits from the cumulative ACK
    # with no further faults. The receiver must finish, whatever the
    # mangled prefix left behind (single-OOO-interval drops included).
    remaining = seq_diff(seq_add(ISS, len(data)), state.ack)
    assert 0 <= remaining <= len(data)
    start = len(data) - remaining
    for segment in segment_stream(data[start:], mss):
        feed(
            state,
            Segment(seq_add(segment.seq, start), segment.payload),
            delivered,
            data,
        )

    assert state.ack == seq_add(ISS, len(data)), "receiver wedged short of the stream end"
    assert bytes(delivered) == data, "delivered stream differs from the original"


@settings(max_examples=40, deadline=None)
@given(
    data=st.binary(min_size=2, max_size=3000),
    mss=st.sampled_from([100, 1448]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_corrupted_segments_never_accepted(data, mss, seed):
    """The checksum front-end drops every mangled-corrupt segment, so
    corruption can delay delivery but never alter the stream."""
    import random

    segments = segment_stream(data, mss)
    expected_sum = {(s.seq, len(s.payload)): checksum16(s.wire_bytes()) for s in segments}

    mangler = SegmentMangler(random.Random(seed), corrupt_p=0.5, reorder_p=0.2)
    state = fresh_receiver()
    delivered = [None] * len(data)
    corrupt_seen = 0
    for segment in mangler.mangle(segments, corrupt_fn=corrupt_segment):
        if segment.corrupted:
            corrupt_seen += 1
            assert not checksum_ok(segment, expected_sum), (
                "single-byte corruption escaped the internet checksum"
            )
            continue  # the pre stage drops it before proto_logic runs
        assert checksum_ok(segment, expected_sum)
        feed(state, segment, delivered, data)
    assert corrupt_seen == sum(1 for op in mangler.ops if op.op == "corrupt")

    # Clean retransmission pass completes delivery with pristine bytes.
    remaining = seq_diff(seq_add(ISS, len(data)), state.ack)
    start = len(data) - remaining
    for segment in segment_stream(data[start:], mss):
        feed(state, Segment(seq_add(segment.seq, start), segment.payload), delivered, data)
    assert bytes(delivered) == data


@settings(max_examples=40, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=4000),
    mss=st.sampled_from([100, 536, 1448]),
    dup=st.integers(min_value=2, max_value=4),
)
def test_pure_duplication_is_idempotent(data, mss, dup):
    """Every segment delivered ``dup`` times, in order: the receiver
    ACKs duplicates without re-delivering or advancing twice."""
    state = fresh_receiver()
    delivered = [None] * len(data)
    notified = 0
    for segment in segment_stream(data, mss):
        for copy in range(dup):
            result = feed(state, segment, delivered, data)
            if copy > 0:
                assert result.notify_rx_len == 0, "duplicate segment re-notified"
                assert result.send_ack, "duplicate must still be ACKed (dup-ACK)"
            else:
                notified += result.notify_rx_len
    assert notified == len(data)
    assert state.ack == seq_add(ISS, len(data))
    assert bytes(delivered) == data


@settings(max_examples=30, deadline=None)
@given(
    data=st.binary(min_size=3, max_size=2000),
    mss=st.sampled_from([64, 256]),
)
def test_reversed_arrival_single_interval_discipline(data, mss):
    """Worst-case reversal: with one OOO interval, only the segment
    adjacent to the interval merges; others are dropped and re-ACKed,
    and ack stays pinned until the head hole fills."""
    state = fresh_receiver()
    delivered = [None] * len(data)
    segments = segment_stream(data, mss)
    for segment in reversed(segments[1:]):
        result = feed(state, segment, delivered, data)
        assert state.ack == ISS, "ack moved before the head arrived"
        assert result.was_ooo
    head = feed(state, segments[0], delivered, data)
    if len(segments) == 2:
        expect_ack = seq_add(ISS, len(data))
    else:
        # Reversed arrival keeps only the highest contiguous run in the
        # single interval; the head fill can cover at most head+interval.
        expect_min = seq_add(ISS, len(segments[0].payload))
        assert seq_diff(state.ack, expect_min) >= 0
        expect_ack = None
    if expect_ack is not None:
        assert state.ack == expect_ack
    assert head.notify_rx_len >= len(segments[0].payload)
