"""Checksum correctness, including the RFC 1624 incremental form."""

import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.proto import checksum16, ones_complement_sum
from repro.proto.checksum import checksum_update16, checksum_update32


def test_known_vector():
    # Classic RFC 1071 example data.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert ones_complement_sum(data) == 0xDDF2
    assert checksum16(data) == 0x220D


def test_odd_length_pads_with_zero():
    assert checksum16(b"\xff") == checksum16(b"\xff\x00")


def test_all_zero_data():
    assert checksum16(b"\x00" * 10) == 0xFFFF


@given(st.binary(min_size=0, max_size=256))
def test_checksum_verifies_to_zero_when_embedded(data):
    # Appending the checksum makes the one's-complement sum all-ones.
    # (The property needs 16-bit alignment, as on the wire.)
    if len(data) % 2:
        data += b"\x00"
    check = ones_complement_sum(data + struct.pack("!H", checksum16(data)))
    assert check == 0xFFFF


@given(
    st.binary(min_size=8, max_size=64).filter(lambda b: len(b) % 2 == 0),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=0xFFFF),
)
def test_incremental_update_matches_recompute(data, word_index, new_word):
    (old_word,) = struct.unpack_from("!H", data, word_index * 2)
    old_checksum = checksum16(data)
    patched = bytearray(data)
    struct.pack_into("!H", patched, word_index * 2, new_word)
    expected = checksum16(bytes(patched))
    updated = checksum_update16(old_checksum, old_word, new_word)
    # 0x0000 and 0xFFFF are the two one's-complement representations of
    # zero; RFC 1624 eqn 3 may land on either, so compare as values.
    assert _same_ones_complement(updated, expected)


def _same_ones_complement(a, b):
    zero = (0x0000, 0xFFFF)
    return a == b or (a in zero and b in zero)


@given(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_incremental_update32_matches_recompute(old_value, new_value):
    data = struct.pack("!IHH", old_value, 0x1234, 0xBEEF)
    old_checksum = checksum16(data)
    patched = struct.pack("!IHH", new_value, 0x1234, 0xBEEF)
    expected = checksum16(patched)
    assert _same_ones_complement(checksum_update32(old_checksum, old_value, new_value), expected)
