"""Interoperability matrix (paper §1: FlexTOE interoperates with other
stacks): every client-stack x server-stack pair runs a two-RPC echo
exchange over the simulated switch with byte-exact verification."""

import pytest

from repro.baselines import add_chelsio_host, add_linux_host, add_tas_host
from repro.harness import Testbed

STACKS = ["flextoe", "linux", "tas", "chelsio"]


def add_host(bed, stack, name):
    if stack == "flextoe":
        return bed.add_flextoe_host(name)
    if stack == "linux":
        return add_linux_host(bed, name)
    if stack == "tas":
        return add_tas_host(bed, name)
    if stack == "chelsio":
        return add_chelsio_host(bed, name)
    raise ValueError(stack)


def echo_exchange(server_stack, client_stack):
    bed = Testbed(seed=3)
    server = add_host(bed, server_stack, "server")
    client = add_host(bed, client_stack, "client")
    bed.seed_all_arp()
    sim = bed.sim
    results = {}

    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app(ctx):
        listener = ctx.listen(7000)
        sock = yield from ctx.accept(listener)
        for _ in range(2):
            data = b""
            while len(data) < 2000:
                chunk = yield from ctx.recv(sock, 65536)
                if not chunk:
                    return
                data += chunk
            yield from ctx.send(sock, data[::-1])

    def client_app(ctx):
        sock = yield from ctx.connect(server.ip, 7000)
        for round_id in range(2):
            message = bytes((round_id + i) % 256 for i in range(2000))
            yield from ctx.send(sock, message)
            reply = b""
            while len(reply) < 2000:
                chunk = yield from ctx.recv(sock, 65536)
                if not chunk:
                    break
                reply += chunk
            results["round%d" % round_id] = reply == message[::-1]
        results["done"] = True

    sim.process(server_app(server_ctx), name="server-app")
    sim.process(client_app(client_ctx), name="client-app")
    sim.run(until=4_000_000_000)
    return results


@pytest.mark.parametrize("server_stack", STACKS)
@pytest.mark.parametrize("client_stack", STACKS)
def test_interop(server_stack, client_stack):
    results = echo_exchange(server_stack, client_stack)
    assert results.get("done"), "exchange did not complete ({} <- {})".format(
        server_stack, client_stack
    )
    assert results.get("round0")
    assert results.get("round1")
