"""Golden-digest regression tests (ISSUE 5).

Four small deterministic scenarios — one echo-RPC exchange per server
stack — run with a passive wire tap on the switch. Every frame the
switch admits is rendered with :func:`repro.faults.log.describe_frame`
(deterministic wire fields only) plus its simulated timestamp, and the
SHA-256 of that log is compared against checked-in values in
``golden_digests.json``.

The digests pin simulation *behaviour*, wire-event by wire-event and
nanosecond by nanosecond: any hot-path rewrite that changes what the
simulator computes — not just how fast — fails loudly here. Performance
work must keep these green by construction.

Updating the goldens
--------------------

When a PR *intentionally* changes behaviour (protocol fix, cost-model
recalibration), regenerate the checked-in values with::

    PYTHONPATH=src python tests/integration/test_golden_digests.py --update

and commit the resulting ``golden_digests.json`` alongside the change,
noting the reason in the commit message. The script prints old/new
digests so unintentional drift is visible at review time.
"""

import hashlib
import json
import os

import pytest

from repro.apps import EchoServer
from repro.apps.rpc import ClosedLoopClient
from repro.faults.log import describe_frame
from repro.harness import Testbed

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), "golden_digests.json")

STACKS = ("flextoe", "linux", "tas", "chelsio")
N_RPCS = 10


class WireTap:
    """A pass-through switch fault hook that logs every admitted frame.

    Installing it does not perturb the simulation: frames are forwarded
    once, undelayed, exactly as without a hook.
    """

    def __init__(self, sim):
        self.sim = sim
        self.lines = []

    def admit(self, frame):
        self.lines.append("{} {}".format(self.sim.now, describe_frame(frame)))
        return [(frame, 0)]

    def digest(self):
        payload = "\n".join(self.lines).encode()
        return hashlib.sha256(payload).hexdigest()


def run_golden_scenario(server_stack):
    """One 10-RPC echo exchange; returns (digest, n_wire_events, final_ns)."""
    bed = Testbed(seed=23)
    if server_stack == "flextoe":
        server = bed.add_flextoe_host("server")
    else:
        from repro.baselines import add_chelsio_host, add_linux_host, add_tas_host

        builder = {"linux": add_linux_host, "tas": add_tas_host, "chelsio": add_chelsio_host}[
            server_stack
        ]
        server = builder(bed, "server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    tap = WireTap(bed.sim)
    bed.switch.faults = tap
    echo = EchoServer(server.new_context(), 7000, request_size=64)
    bed.sim.process(echo.run(), name="echo")
    rpc = ClosedLoopClient(client.new_context(), server.ip, 7000, 64, 64, warmup=1)
    proc = bed.sim.process(rpc.run(N_RPCS), name="rpc")
    bed.sim.run(until=proc)
    assert rpc.completed == N_RPCS, "golden scenario incomplete"
    return tap.digest(), len(tap.lines), bed.sim.now


def load_goldens():
    with open(GOLDENS_PATH) as source:
        return json.load(source)


@pytest.mark.parametrize("stack", STACKS)
def test_golden_digest(stack):
    goldens = load_goldens()
    digest, n_events, final_ns = run_golden_scenario(stack)
    expected = goldens[stack]
    assert digest == expected["digest"], (
        "{}: wire-log digest changed ({} wire events, final t={} ns vs golden {} events, t={} ns).\n"
        "Simulation behaviour drifted. If intentional, regenerate with:\n"
        "  PYTHONPATH=src python tests/integration/test_golden_digests.py --update".format(
            stack, n_events, final_ns, expected["wire_events"], expected["final_ns"]
        )
    )
    assert n_events == expected["wire_events"]
    assert final_ns == expected["final_ns"]


def update_goldens():
    try:
        old = load_goldens()
    except (OSError, ValueError):
        old = {}
    fresh = {}
    for stack in STACKS:
        digest, n_events, final_ns = run_golden_scenario(stack)
        fresh[stack] = {"digest": digest, "wire_events": n_events, "final_ns": final_ns}
        previous = old.get(stack, {}).get("digest", "<none>")
        marker = "  (unchanged)" if previous == digest else "  (was {})".format(previous[:16])
        print("%-8s %s%s" % (stack, digest, marker))
    with open(GOLDENS_PATH, "w") as out:
        json.dump(fresh, out, indent=2)
        out.write("\n")
    print("wrote {}".format(GOLDENS_PATH))


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        update_goldens()
    else:
        print(__doc__)
        sys.exit(2)
