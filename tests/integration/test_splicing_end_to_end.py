"""End-to-end connection splicing: client <-> proxy <-> backend.

The proxy terminates both connections, asks the control plane to splice
them, and from then on RPCs flow client<->backend entirely through the
proxy's NIC — the proxy host never sees another data segment (paper
§3.3 / AccelTCP)."""

import pytest

from repro.control.splice import SpliceError, SpliceManager
from repro.flextoe.module import ModuleChain
from repro.harness import Testbed
from repro.xdp import XdpAdapter
from repro.xdp.builtins import SpliceProgram


def build():
    bed = Testbed(seed=21)
    client = bed.add_flextoe_host("client")
    # The proxy's NIC carries the splice module at ingress.
    splice_program = SpliceProgram()
    proxy = bed.add_flextoe_host("proxy")
    proxy.nic.datapath.ingress_modules = ModuleChain([XdpAdapter(py_program=splice_program)])
    backend = bed.add_flextoe_host("backend")
    bed.seed_all_arp()
    manager = SpliceManager(proxy.control_plane, splice_program)
    return bed, client, proxy, backend, manager, splice_program


def test_spliced_rpcs_bypass_proxy_host():
    bed, client, proxy, backend, manager, program = build()
    sim = bed.sim
    results = {}

    backend_ctx = backend.new_context()
    proxy_ctx = proxy.new_context()
    client_ctx = client.new_context()
    spliced = sim.event()

    def backend_app():
        listener = backend_ctx.listen(9000)
        sock = yield from backend_ctx.accept(listener)
        for _ in range(3):
            data = yield from backend_ctx.recv(sock, 4096)
            if not data:
                return
            yield from backend_ctx.send(sock, data[::-1])

    def proxy_app():
        listener = proxy_ctx.listen(8080)
        sock_a = yield from proxy_ctx.accept(listener)
        sock_b = yield from proxy_ctx.connect(backend.ip, 9000)
        # Both legs quiescent: hand the pair to the NIC.
        manager.splice(sock_a.conn_index, sock_b.conn_index)
        results["spliced_at"] = sim.now
        spliced.succeed()

    def client_app():
        sock = yield from client_ctx.connect(proxy.ip, 8080)
        yield spliced
        for i in range(3):
            message = ("request-%d" % i).encode()
            yield from client_ctx.send(sock, message)
            reply = yield from client_ctx.recv(sock, 4096)
            results.setdefault("replies", []).append(reply)
        results["done"] = True

    sim.process(backend_app(), name="backend")
    sim.process(proxy_app(), name="proxy")
    sim.process(client_app(), name="client")
    sim.run(until=500_000_000)

    assert results.get("done"), "spliced exchange did not complete"
    assert results["replies"] == [b"0-tseuqer", b"1-tseuqer", b"2-tseuqer"]
    # The NIC did the forwarding: segments were spliced...
    assert program.spliced >= 6
    # ...and the proxy host saw no data-path traffic after the splice:
    # its connection table is empty and no contexts got notifications
    # after the splice instant.
    assert len(proxy.nic.datapath.conn_table) == 0
    late = [
        n.created_at
        for pair in proxy.nic.datapath.contexts.values()
        for n in pair.inbound
    ]
    assert all(t <= results["spliced_at"] for t in late)
    assert manager.spliced_pairs == 1


def test_fin_through_splice_cleans_up():
    bed, client, proxy, backend, manager, program = build()
    sim = bed.sim
    results = {}
    backend_ctx = backend.new_context()
    proxy_ctx = proxy.new_context()
    client_ctx = client.new_context()
    spliced = sim.event()

    def backend_app():
        listener = backend_ctx.listen(9000)
        sock = yield from backend_ctx.accept(listener)
        data = yield from backend_ctx.recv(sock, 4096)
        yield from backend_ctx.send(sock, data)
        eof = yield from backend_ctx.recv(sock, 4096)
        results["backend_eof"] = eof == b""

    def proxy_app():
        listener = proxy_ctx.listen(8080)
        sock_a = yield from proxy_ctx.accept(listener)
        sock_b = yield from proxy_ctx.connect(backend.ip, 9000)
        manager.splice(sock_a.conn_index, sock_b.conn_index)
        spliced.succeed()

    def client_app():
        sock = yield from client_ctx.connect(proxy.ip, 8080)
        yield spliced
        yield from client_ctx.send(sock, b"one-shot")
        results["reply"] = yield from client_ctx.recv(sock, 4096)
        yield from client_ctx.close(sock)

    sim.process(backend_app(), name="backend")
    sim.process(proxy_app(), name="proxy")
    sim.process(client_app(), name="client")
    sim.run(until=500_000_000)

    assert results.get("reply") == b"one-shot"
    # The client's FIN carried a control flag: the module removed the
    # entry and redirected it to the proxy's control plane; the manager
    # garbage-collected the pair.
    assert program.closed >= 1
    assert manager.spliced_pairs == 0


def test_splice_requires_offloaded_connections():
    bed, client, proxy, backend, manager, program = build()
    with pytest.raises(SpliceError):
        manager.splice(123, 456)
