"""End-to-end FlexTOE <-> FlexTOE integration over the simulated network:
handshake, data transfer through the full NIC pipeline, teardown."""

import pytest

from repro.harness import Testbed


@pytest.fixture
def bed():
    bed = Testbed(seed=1)
    bed.add_flextoe_host("server")
    bed.add_flextoe_host("client")
    bed.seed_all_arp()
    return bed


def run_pair(bed, server_proc, client_proc, until=2_000_000_000):
    sim = bed.sim
    server = bed.hosts["server"]
    client = bed.hosts["client"]
    server_ctx = server.new_context()
    client_ctx = client.new_context()
    results = {}

    sim.process(server_proc(server_ctx, results), name="server-app")
    sim.process(client_proc(client_ctx, server.ip, results), name="client-app")
    sim.run(until=until)
    return results


def test_connect_and_echo_small(bed):
    def server(ctx, results):
        listener = ctx.listen(7777)
        sock = yield from ctx.accept(listener)
        data = yield from ctx.recv(sock, 4096)
        results["server_got"] = data
        yield from ctx.send(sock, data.upper())

    def client(ctx, server_ip, results):
        sock = yield from ctx.connect(server_ip, 7777)
        yield from ctx.send(sock, b"hello flextoe")
        reply = yield from ctx.recv(sock, 4096)
        results["client_got"] = reply
        results["done_at"] = ctx.sim.now

    results = run_pair(bed, server, client)
    assert results.get("server_got") == b"hello flextoe"
    assert results.get("client_got") == b"HELLO FLEXTOE"
    # Latency sanity: round trip under a millisecond of simulated time.
    assert results["done_at"] < 1_000_000


def test_large_transfer_multiple_segments(bed):
    payload = bytes(i % 251 for i in range(50_000))

    def server(ctx, results):
        listener = ctx.listen(7777)
        sock = yield from ctx.accept(listener)
        got = b""
        while len(got) < len(payload):
            chunk = yield from ctx.recv(sock, 65536)
            if not chunk:
                break
            got += chunk
        results["received"] = got

    def client(ctx, server_ip, results):
        sock = yield from ctx.connect(server_ip, 7777)
        yield from ctx.send(sock, payload)
        results["sent"] = len(payload)

    results = run_pair(bed, server, client, until=5_000_000_000)
    assert results.get("received") == payload


def test_bidirectional_concurrent_transfer(bed):
    blob = bytes(range(256)) * 40  # 10240 bytes each way

    def server(ctx, results):
        listener = ctx.listen(5000)
        sock = yield from ctx.accept(listener)
        send_proc = ctx.sim.process(ctx.send(sock, blob))
        got = b""
        while len(got) < len(blob):
            chunk = yield from ctx.recv(sock, 8192)
            if not chunk:
                break
            got += chunk
        yield send_proc
        results["server_rx"] = got

    def client(ctx, server_ip, results):
        sock = yield from ctx.connect(server_ip, 5000)
        send_proc = ctx.sim.process(ctx.send(sock, blob))
        got = b""
        while len(got) < len(blob):
            chunk = yield from ctx.recv(sock, 8192)
            if not chunk:
                break
            got += chunk
        yield send_proc
        results["client_rx"] = got

    results = run_pair(bed, server, client, until=5_000_000_000)
    assert results.get("server_rx") == blob
    assert results.get("client_rx") == blob


def test_fin_teardown_notifies_peer(bed):
    def server(ctx, results):
        listener = ctx.listen(6000)
        sock = yield from ctx.accept(listener)
        data = yield from ctx.recv(sock, 1024)
        results["data"] = data
        # Peer closes; next recv returns empty.
        eof = yield from ctx.recv(sock, 1024)
        results["eof"] = eof
        yield from ctx.close(sock)

    def client(ctx, server_ip, results):
        sock = yield from ctx.connect(server_ip, 6000)
        yield from ctx.send(sock, b"bye")
        yield from ctx.close(sock)
        results["closed"] = True

    results = run_pair(bed, server, client)
    assert results.get("data") == b"bye"
    assert results.get("eof") == b""
    assert results.get("closed")


def test_many_connections_same_context(bed):
    n_conns = 8

    def server(ctx, results):
        listener = ctx.listen(8000)
        results["echoed"] = 0

        def serve(sock):
            data = yield from ctx.recv(sock, 1024)
            yield from ctx.send(sock, data)
            results["echoed"] += 1

        for _ in range(n_conns):
            sock = yield from ctx.accept(listener)
            ctx.sim.process(serve(sock))

    def client(ctx, server_ip, results):
        results["ok"] = 0

        def one(i, done):
            sock = yield from ctx.connect(server_ip, 8000)
            msg = ("req-%02d" % i).encode()
            yield from ctx.send(sock, msg)
            reply = yield from ctx.recv(sock, 1024)
            assert reply == msg
            results["ok"] += 1
            done.succeed()

        events = []
        for i in range(n_conns):
            done = ctx.sim.event()
            events.append(done)
            ctx.sim.process(one(i, done))
        for event in events:
            yield event

    results = run_pair(bed, server, client, until=10_000_000_000)
    assert results.get("ok") == n_conns
    assert results.get("echoed") == n_conns


def test_stats_and_pipeline_counters(bed):
    def server(ctx, results):
        listener = ctx.listen(9000)
        sock = yield from ctx.accept(listener)
        data = yield from ctx.recv(sock, 1024)
        yield from ctx.send(sock, data)

    def client(ctx, server_ip, results):
        sock = yield from ctx.connect(server_ip, 9000)
        yield from ctx.send(sock, b"x" * 100)
        yield from ctx.recv(sock, 1024)
        results["done"] = True

    results = run_pair(bed, server, client)
    assert results.get("done")
    server_dp = bed.hosts["server"].nic.datapath
    assert server_dp.rx_frames_seen > 0
    assert sum(s.processed["rx"] for s in server_dp.protocol_stages) > 0
    assert server_dp.nbi_stage.transmitted > 0
    assert bed.hosts["server"].nic.chip.dma.ops > 0
