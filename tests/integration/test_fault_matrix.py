"""Fault matrix (ISSUE 2 acceptance bar): every interop stack pair must
survive the three canonical fault plans — bursty loss, a reordering
window, and transient DMA failures — with byte-exact delivery in both
directions and no wedge inside the horizon.

Each cell reuses :func:`repro.faults.cli.run_plan` (the same harness the
``python -m repro faults`` CLI runs), so a matrix failure reproduces
from the command line with the printed plan/seed/stack arguments.
"""

import pytest

from repro.faults.cli import run_plan
from repro.faults.plans import CANONICAL

STACKS = ["flextoe", "linux", "tas", "chelsio"]
PLANS = sorted(CANONICAL)
SEED = 11
N_BYTES = 6000


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("server_stack", STACKS)
@pytest.mark.parametrize("client_stack", STACKS)
def test_fault_matrix(plan, server_stack, client_stack):
    result = run_plan(
        plan,
        seed=SEED,
        server_stack=server_stack,
        client_stack=client_stack,
        n_bytes=N_BYTES,
    )
    assert not result["violations"], (
        "plan={} {}<-{}: {} (repro: python -m repro faults --plan {} --seed {} "
        "--server {} --client {} --bytes {})".format(
            plan,
            server_stack,
            client_stack,
            "; ".join(result["violations"]),
            plan,
            SEED,
            server_stack,
            client_stack,
            N_BYTES,
        )
    )
    assert result["finished_ns"] is not None


def test_bursty_loss_moves_retransmit_counters():
    """Under sustained bursty loss on a longer stream, the recovery
    machinery must actually fire: retransmission counters move."""
    result = run_plan(
        "bursty-loss", seed=7, server_stack="flextoe", client_stack="flextoe", n_bytes=60000
    )
    assert not result["violations"]
    dropped = sum(
        count for key, count in result["event_counts"].items() if key.endswith("/drop")
    )
    assert dropped > 0, "plan injected no losses; tune the plan or seed"
    assert result["retransmit_events"] > 0, (
        "{} frames dropped but no retransmission counter moved".format(dropped)
    )


def test_dma_flake_injects_retries():
    """The dma-flake plan must exercise the DMA retry path on a FlexTOE
    NIC, and the stream must still be exact despite completion skew."""
    result = run_plan(
        "dma-flake", seed=7, server_stack="flextoe", client_stack="flextoe", n_bytes=60000
    )
    assert not result["violations"]
    retries = sum(
        count for key, count in result["event_counts"].items() if key.endswith("/dma-retry")
    )
    assert retries > 0, "no DMA retries injected; tune the plan or seed"
