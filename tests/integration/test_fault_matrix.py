"""Fault matrix (ISSUE 2 acceptance bar): every interop stack pair must
survive the three canonical fault plans — bursty loss, a reordering
window, and transient DMA failures — with byte-exact delivery in both
directions and no wedge inside the horizon.

Each cell reuses :func:`repro.faults.cli.run_plan` (the same harness the
``python -m repro faults`` CLI runs), so a matrix failure reproduces
from the command line with the printed plan/seed/stack arguments.
"""

import pytest

from repro.control import ControlPlaneConfig
from repro.faults.cli import run_plan
from repro.faults.invariants import LivenessViolation, counters_snapshot, run_until
from repro.faults.plans import CANONICAL
from repro.libtoe.errors import ConnectionTimeoutError

STACKS = ["flextoe", "linux", "tas", "chelsio"]
PLANS = sorted(CANONICAL)
SEED = 11
N_BYTES = 6000


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("server_stack", STACKS)
@pytest.mark.parametrize("client_stack", STACKS)
def test_fault_matrix(plan, server_stack, client_stack):
    result = run_plan(
        plan,
        seed=SEED,
        server_stack=server_stack,
        client_stack=client_stack,
        n_bytes=N_BYTES,
    )
    assert not result["violations"], (
        "plan={} {}<-{}: {} (repro: python -m repro faults --plan {} --seed {} "
        "--server {} --client {} --bytes {})".format(
            plan,
            server_stack,
            client_stack,
            "; ".join(result["violations"]),
            plan,
            SEED,
            server_stack,
            client_stack,
            N_BYTES,
        )
    )
    assert result["finished_ns"] is not None


def test_bursty_loss_moves_retransmit_counters():
    """Under sustained bursty loss on a longer stream, the recovery
    machinery must actually fire: retransmission counters move."""
    result = run_plan(
        "bursty-loss", seed=7, server_stack="flextoe", client_stack="flextoe", n_bytes=60000
    )
    assert not result["violations"]
    dropped = sum(
        count for key, count in result["event_counts"].items() if key.endswith("/drop")
    )
    assert dropped > 0, "plan injected no losses; tune the plan or seed"
    assert result["retransmit_events"] > 0, (
        "{} frames dropped but no retransmission counter moved".format(dropped)
    )


def test_dma_flake_injects_retries():
    """The dma-flake plan must exercise the DMA retry path on a FlexTOE
    NIC, and the stream must still be exact despite completion skew."""
    result = run_plan(
        "dma-flake", seed=7, server_stack="flextoe", client_stack="flextoe", n_bytes=60000
    )
    assert not result["violations"]
    retries = sum(
        count for key, count in result["event_counts"].items() if key.endswith("/dma-retry")
    )
    assert retries > 0, "no DMA retries injected; tune the plan or seed"


# -- data-path crash recovery (ISSUE 4) -------------------------------------


def run_crash_workload(seed=7, pairs=16, n_bytes=20_000, server_config=None, deadline_ns=400_000_000):
    """16-pair echo workload with the server's datapath crashed mid
    transfer; returns (per-pair results, counters, injection digest).

    Raises LivenessViolation / ConnectionTimeoutError when the workload
    cannot complete — which is exactly what the recovery-disabled
    control asserts.
    """
    from repro.faults import make_plan
    from repro.harness import Testbed

    bed = Testbed(seed=seed)
    cp_kwargs = {"config": server_config} if server_config is not None else None
    server = bed.add_flextoe_host("server", cp_kwargs=cp_kwargs)
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    controller = bed.install_fault_plan(make_plan("nic-crash"))

    messages = {
        i: bytes((i * 7 + j) % 251 for j in range(n_bytes)) for i in range(pairs)
    }
    results = {i: {"echoed": b"", "reply": b""} for i in range(pairs)}
    done = {"count": 0}

    def server_app(i, ctx):
        listener = ctx.listen(7000 + i)
        sock = yield from ctx.accept(listener)
        data = b""
        while len(data) < n_bytes:
            chunk = yield from ctx.recv(sock, 65536)
            if not chunk:
                return
            data += chunk
        results[i]["echoed"] = data
        yield from ctx.send(sock, data[::-1])

    def client_app(i, ctx):
        sock = yield from ctx.connect(server.ip, 7000 + i)
        yield from ctx.send(sock, messages[i])
        reply = b""
        while len(reply) < n_bytes:
            chunk = yield from ctx.recv(sock, 65536)
            if not chunk:
                break
            reply += chunk
        results[i]["reply"] = reply
        done["count"] += 1

    for i in range(pairs):
        bed.sim.process(server_app(i, server.new_context()), name="server-{}".format(i))
        bed.sim.process(client_app(i, client.new_context()), name="client-{}".format(i))

    run_until(bed, lambda: done["count"] == pairs, deadline_ns, label="nic-crash")
    return results, counters_snapshot(bed), controller.log.digest(), messages


def test_nic_crash_recovery_exact_delivery_16_pairs():
    """The headline invariant: a mid-transfer data-path crash on the
    server is detected by the watchdog, every connection is re-offloaded
    from its host shadow, and all 16 pairs still deliver byte-exactly —
    the peers see only a retransmission gap."""
    results, counters, digest, messages = run_crash_workload()
    for i, message in messages.items():
        assert results[i]["echoed"] == message, "pair {} c->s stream".format(i)
        assert results[i]["reply"] == message[::-1], "pair {} s->c stream".format(i)
    server = counters["server"]
    assert server["watchdog_fired"] >= 1
    assert server["recoveries"] >= 1
    assert server["nic_reboots"] >= 1
    assert server["reoffloaded"] == 16
    assert counters["client"]["aborts"] == 0


def test_nic_crash_recovery_is_deterministic():
    """Two same-seed runs produce identical injection digests, finish
    states, and counters."""
    r1 = run_crash_workload(seed=13, pairs=4, n_bytes=20_000)
    r2 = run_crash_workload(seed=13, pairs=4, n_bytes=20_000)
    assert r1[2] == r2[2]  # InjectionLog digest
    assert r1[1] == r2[1]  # full counters snapshot
    assert r1[0] == r2[0]  # delivered bytes


def test_nic_crash_without_recovery_strands_the_transfer():
    """The negative control: with recovery disabled the same seeded
    crash leaves the workload stranded (clients eventually abort with a
    typed timeout, or the run wedges to the deadline)."""
    config = ControlPlaneConfig(recovery_enabled=False)
    with pytest.raises((LivenessViolation, ConnectionTimeoutError)):
        run_crash_workload(
            seed=7, pairs=4, n_bytes=20_000, server_config=config, deadline_ns=100_000_000
        )


def test_degraded_mode_keeps_peers_alive_through_long_outage():
    """While the NIC is down the host slow-path shim answers peers with
    zero-window ACKs, parking them in persist state: even an outage far
    longer than the abort threshold must not RST-out any connection."""
    config = ControlPlaneConfig(reboot_delay_ns=50_000_000)
    results, counters, digest, messages = run_crash_workload(
        seed=7, pairs=2, n_bytes=120_000, server_config=config, deadline_ns=800_000_000
    )
    for i, message in messages.items():
        assert results[i]["reply"] == message[::-1]
    assert counters["server"]["slowpath_acks"] > 0
    assert counters["client"]["aborts"] == 0
    assert counters["server"]["recoveries"] == 1
