"""Soak tests: data integrity end-to-end under sustained loss.

Every stack must deliver byte-exact streams through a lossy switch —
the strongest correctness property of the whole repository, because it
exercises retransmission, reassembly, window management, and (for
FlexTOE) the control-plane RTO path together.

Loss is injected through the :mod:`repro.faults` plan API (a
``BurstLoss`` with burst length 1 is classic uniform drop), so these
runs land in a deterministic injection log like every other fault
campaign.
"""

import zlib

import pytest

from repro.baselines import add_chelsio_host, add_linux_host, add_tas_host
from repro.faults import BurstLoss, FaultPlan
from repro.harness import Testbed


def stable_seed(*parts):
    """Per-case seed that survives hash randomization across runs."""
    return zlib.crc32(repr(parts).encode()) & 0xFFFF


def uniform_loss_plan(probability):
    return FaultPlan("soak-loss").add(
        BurstLoss(probability=probability, burst_min=1, burst_max=1)
    )


def build(stack, loss, seed):
    bed = Testbed(seed=seed)
    if stack == "flextoe":
        server = bed.add_flextoe_host("server")
    elif stack == "linux":
        server = add_linux_host(bed, "server")
    elif stack == "tas":
        server = add_tas_host(bed, "server")
    else:
        server = add_chelsio_host(bed, "server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    controller = bed.install_fault_plan(uniform_loss_plan(loss))
    return bed, server, client, controller


@pytest.mark.parametrize("stack", ["flextoe", "linux", "tas", "chelsio"])
@pytest.mark.parametrize("loss", [0.02, 0.10])
def test_stream_integrity_under_loss(stack, loss):
    bed, server, client, controller = build(stack, loss, seed=stable_seed(stack, loss))
    payload = bytes((7 * i) % 256 for i in range(30_000))
    results = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        got = b""
        while len(got) < len(payload):
            chunk = yield from server_ctx.recv(sock, 65536)
            if not chunk:
                break
            got += chunk
        results["got"] = got
        yield from server_ctx.send(sock, got[-1000:])

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        yield from client_ctx.send(sock, payload)
        tail = b""
        while len(tail) < 1000:
            chunk = yield from client_ctx.recv(sock, 4096)
            if not chunk:
                break
            tail += chunk
        results["tail"] = tail

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=3_000_000_000)  # 3 s: covers many RTOs
    dropped = len(controller.log.actions("drop"))
    if loss >= 0.05:
        # Low-loss cells on TSO-sized baseline streams can legitimately
        # see zero drops; the heavy tier must always inject.
        assert dropped > 0, "loss plan injected nothing at {}%".format(loss * 100)
    assert results.get("got") == payload, "{} corrupted/incomplete at {}% loss ({} drops)".format(
        stack, loss * 100, dropped
    )
    assert results.get("tail") == payload[-1000:]


def test_bidirectional_soak_with_loss_flextoe_pair():
    bed, server, client, controller = build("flextoe", 0.05, seed=77)
    blob = bytes((3 * i + 1) % 256 for i in range(20_000))
    results = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def pump(ctx, sock, results, key):
        send_proc = ctx.sim.process(ctx.send(sock, blob))
        got = b""
        while len(got) < len(blob):
            chunk = yield from ctx.recv(sock, 65536)
            if not chunk:
                break
            got += chunk
        yield send_proc
        results[key] = got

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        yield from pump(server_ctx, sock, results, "server")

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        yield from pump(client_ctx, sock, results, "client")

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=3_000_000_000)
    assert len(controller.log.actions("drop")) > 0
    assert results.get("server") == blob
    assert results.get("client") == blob
