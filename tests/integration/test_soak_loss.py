"""Soak tests: data integrity end-to-end under sustained loss.

Every stack must deliver byte-exact streams through a lossy switch —
the strongest correctness property of the whole repository, because it
exercises retransmission, reassembly, window management, and (for
FlexTOE) the control-plane RTO path together.
"""

import pytest

from repro.baselines import add_chelsio_host, add_linux_host, add_tas_host
from repro.harness import Testbed
from repro.net import LossInjector


def build(stack, loss, seed):
    bed = Testbed(seed=seed)
    bed.switch.loss = LossInjector(bed.rng.stream("loss"), probability=loss)
    if stack == "flextoe":
        server = bed.add_flextoe_host("server")
    elif stack == "linux":
        server = add_linux_host(bed, "server")
    elif stack == "tas":
        server = add_tas_host(bed, "server")
    else:
        server = add_chelsio_host(bed, "server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    return bed, server, client


@pytest.mark.parametrize("stack", ["flextoe", "linux", "tas", "chelsio"])
@pytest.mark.parametrize("loss", [0.02, 0.10])
def test_stream_integrity_under_loss(stack, loss):
    bed, server, client = build(stack, loss, seed=hash((stack, loss)) & 0xFFFF)
    payload = bytes((7 * i) % 256 for i in range(30_000))
    results = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        got = b""
        while len(got) < len(payload):
            chunk = yield from server_ctx.recv(sock, 65536)
            if not chunk:
                break
            got += chunk
        results["got"] = got
        yield from server_ctx.send(sock, got[-1000:])

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        yield from client_ctx.send(sock, payload)
        tail = b""
        while len(tail) < 1000:
            chunk = yield from client_ctx.recv(sock, 4096)
            if not chunk:
                break
            tail += chunk
        results["tail"] = tail

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=3_000_000_000)  # 3 s: covers many RTOs
    assert results.get("got") == payload, "{} corrupted/incomplete at {}% loss".format(
        stack, loss * 100
    )
    assert results.get("tail") == payload[-1000:]


def test_bidirectional_soak_with_loss_flextoe_pair():
    bed, server, client = build("flextoe", 0.05, seed=77)
    blob = bytes((3 * i + 1) % 256 for i in range(20_000))
    results = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def pump(ctx, sock, results, key):
        send_proc = ctx.sim.process(ctx.send(sock, blob))
        got = b""
        while len(got) < len(blob):
            chunk = yield from ctx.recv(sock, 65536)
            if not chunk:
                break
            got += chunk
        yield send_proc
        results[key] = got

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        yield from pump(server_ctx, sock, results, "server")

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        yield from pump(client_ctx, sock, results, "client")

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=3_000_000_000)
    assert results.get("server") == blob
    assert results.get("client") == blob
