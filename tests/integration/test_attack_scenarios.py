"""The goodput-under-attack acceptance pins (ISSUE 9).

`run_attack_scenario` already raises AssertionError when a survivability
gate fails; these tests run the three scenarios in quick mode and pin
the headline numbers the CI attack-matrix job gates on:

  - defence on keeps >=50% of no-attack benign goodput,
  - defence off demonstrably collapses under the SYN flood,
  - CONN_SLAB's live-slot high-water mark stays at the benign level.
"""

import pytest

from repro.bench.attack import run_attack_scenario


@pytest.fixture(scope="module")
def synflood():
    _sim, checks, metrics = run_attack_scenario("synflood", quick=True)
    return checks, metrics


def test_synflood_defense_on_keeps_goodput(synflood):
    checks, _metrics = synflood
    assert checks["on_ratio"] >= 0.5
    assert checks["detector_drops"] > 0
    assert checks["cookies_sent_on"] > 0


def test_synflood_defense_off_collapses(synflood):
    checks, _metrics = synflood
    assert checks["off_ratio"] < 0.5
    assert checks["off_completed"] < checks["baseline_completed"]


def test_synflood_slab_watermark_bounded(synflood):
    checks, _metrics = synflood
    # Defence off: the flood allocates offload state far past the
    # benign level. Defence on: the watermark stays where benign-only
    # load put it (small slack for handshakes racing the detector).
    assert checks["slab_watermark_off"] > checks["slab_watermark_on"]
    assert checks["slab_watermark_on"] <= checks["slab_watermark_off"] // 2


def test_churn_scenario_gates_hold():
    _sim, checks, metrics = run_attack_scenario("churn", quick=True)
    assert checks["on_ratio"] >= 0.5
    assert checks["detector_drops"] > 0
    # Churn burns host buffer memory; the detector must stop the burn.
    assert metrics["mem_used_on_bytes"] < metrics["mem_used_off_bytes"]


def test_incast_scenario_stops_rst_reflection():
    _sim, checks, _metrics = run_attack_scenario("incast", quick=True)
    assert checks["rsts_reflected_off"] > 0
    assert checks["rsts_reflected_on"] < checks["rsts_reflected_off"]
    assert checks["on_ratio"] >= 0.5
