"""Cross-process determinism of the sharded connscale runs.

Two properties hold by construction (see ``repro.bench.shard``):

* merged *semantic* counters are a function of the global plan only —
  shards=1 and shards=4 produce identical merged counters;
* each shard's simulation is a pure function of (seed, shard, n) —
  repeating a run, in fresh worker processes, reproduces every shard's
  wire digest byte-for-byte.
"""

from repro.bench.shard import (
    SHARD_GROUPS,
    group_of_ordinal,
    owner_of_group,
    run_connscale,
    shard_seed,
)

PLAN = dict(total_conns=400, actives=4, n_requests=3, seed=11)


def strip_shard_locals(merged):
    """Merged view minus per-shard quantities (events, digests, RSS)."""
    return {
        "counters": merged["counters"],
        "bulk_conns": merged["bulk_conns"],
    }


def test_merged_counters_invariant_to_shard_count():
    one = run_connscale(shards=1, in_process=True, **PLAN)
    four = run_connscale(shards=4, in_process=True, **PLAN)
    assert strip_shard_locals(one) == strip_shard_locals(four)
    # Every flow group got its share: round-robin by ordinal.
    by_group = four["counters"]["bulk_by_group"]
    assert sum(by_group.values()) == PLAN["total_conns"]
    assert len(by_group) == SHARD_GROUPS


def test_repeated_runs_are_byte_identical_across_processes():
    first = run_connscale(shards=4, **PLAN)
    second = run_connscale(shards=4, **PLAN)
    assert first["wire_digests"] == second["wire_digests"]
    assert first["counters"] == second["counters"]
    assert first["events"] == second["events"]
    assert first["sim_ns"] == second["sim_ns"]
    per_shard = [
        (entry["shard"], entry["events"], entry["sim_ns"], entry["wire_frames"])
        for entry in first["shards"]
    ]
    assert per_shard == [
        (entry["shard"], entry["events"], entry["sim_ns"], entry["wire_frames"])
        for entry in second["shards"]
    ]


def test_ownership_is_total_and_disjoint():
    for n_shards in (1, 2, 4, 8, 16):
        owners = {}
        for ordinal in range(200):
            group = group_of_ordinal(ordinal)
            owner = owner_of_group(group, n_shards)
            assert 0 <= owner < n_shards
            # Ownership is per-group, hence consistent per ordinal class.
            assert owners.setdefault(group, owner) == owner
        assert set(owners) == set(range(SHARD_GROUPS))


def test_shard_seeds_are_distinct():
    seeds = {shard_seed(11, k) for k in range(16)}
    assert len(seeds) == 16
    assert shard_seed(11, 0) != shard_seed(12, 0)
