"""``python -m repro`` argument handling (no simulation runs here)."""

import pytest

from repro.__main__ import COMMANDS, build_parser, main


def test_help_advertises_every_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for command in ("lint", "faults", "bench"):
        assert command in out
    assert "pytest-benchmark" not in out  # stale hint must not return


def test_commands_registry_matches_parser():
    parser = build_parser()
    usage = parser.format_help()
    for command in COMMANDS:
        assert command in usage


def test_unknown_command_is_an_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code == 2
    assert "frobnicate" in capsys.readouterr().err


def test_bench_list_forwards_to_subparser(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "echo-rpc-16pair" in out
    assert "fault-soak" in out


def test_bench_option_reaches_subparser_verbatim(capsys):
    # The bpo-17050 regression: a leading optional after the subcommand
    # must reach the subsystem parser, not die at the top level.
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--help"])
    assert excinfo.value.code == 0
    assert "--compare" in capsys.readouterr().out


def test_faults_list_forwards_to_subparser(capsys):
    assert main(["faults", "--list"]) == 0
    assert capsys.readouterr().out.strip()
