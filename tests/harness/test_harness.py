"""Harness utilities: testbed builder, report tables, formatting."""

import pytest

from repro.harness import Testbed
from repro.harness.report import Table, format_mops, format_rate, format_us


def test_addresses_unique_and_sequential():
    bed = Testbed()
    mac1, ip1 = bed.addresses()
    mac2, ip2 = bed.addresses()
    assert mac2 == mac1 + 1
    assert ip2 == ip1 + 1


def test_duplicate_host_name_rejected():
    bed = Testbed()
    bed.add_flextoe_host("a")
    with pytest.raises(ValueError):
        bed.add_flextoe_host("a")


def test_seed_all_arp_covers_every_host():
    bed = Testbed()
    a = bed.add_flextoe_host("a")
    b = bed.add_flextoe_host("b")
    bed.seed_all_arp()
    assert b.ip in a.control_plane.arp_table
    assert a.ip in b.control_plane.arp_table


def test_contexts_get_unique_ids():
    bed = Testbed()
    host = bed.add_flextoe_host("a")
    ctx1 = host.new_context()
    ctx2 = host.new_context()
    assert ctx1.context_id != ctx2.context_id
    # Context 0 is reserved for the control plane.
    assert ctx1.context_id >= 1


def test_format_helpers():
    assert format_rate(40_000_000_000) == "40.00 Gbps"
    assert format_rate(1_500_000) == "1.50 Mbps"
    assert format_rate(2_000) == "2.00 Kbps"
    assert format_rate(12) == "12 bps"
    assert format_us(1500) == "1.5 us"
    assert format_mops(11_350_000) == "11.35 mOps"


def test_table_renders_aligned():
    table = Table("Demo", ["name", "value"])
    table.add_row("short", 1)
    table.add_row("a-much-longer-name", 12345)
    text = table.render()
    lines = text.splitlines()
    assert "== Demo ==" in lines[1]
    data_lines = lines[3:]
    assert len({line.index("|") for line in data_lines if "|" in line}) == 1


def test_table_rejects_wrong_arity():
    table = Table("Demo", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")
