"""Attack generators: seeded determinism, logging, and the rate mixer."""

import random

from repro.apps.attackgen import AttackLog, Attacker, attack_interval_ns
from repro.harness import Testbed
from repro.proto import FLAG_RST, FLAG_SYN, str_to_ip, str_to_mac


def build(seed=3):
    bed = Testbed(seed=seed)
    server = bed.add_flextoe_host("server")
    bed.seed_all_arp()
    station = bed.topology.attach(
        "attacker", mac=str_to_mac("02:00:00:00:00:99"), ip=str_to_ip("10.0.200.9")
    )
    attacker = Attacker(bed.sim, station, server.ip, server.mac, 7000, seed=17)
    return bed, server, attacker


def run_flood(seed):
    bed, server, attacker = build()
    # Reseed the generator independent of the testbed seed.
    attacker.rng = random.Random(seed)
    bed.sim.process(attacker.syn_flood(20, 1_000, src_pool=8), name="flood")
    bed.sim.run(until=10_000_000)
    return [
        (e["kind"], e.get("src"), e.get("sport")) for e in attacker.log.events
    ]


def test_syn_flood_is_deterministic_per_seed():
    assert run_flood(1) == run_flood(1)
    assert run_flood(1) != run_flood(2)


def test_attack_log_counts_match_events():
    bed, server, attacker = build()
    bed.sim.process(attacker.syn_flood(15, 1_000, src_pool=4), name="flood")
    bed.sim.run(until=10_000_000)
    log = attacker.log
    assert log.counts.get("syn") == 15
    assert len([e for e in log.events if e["kind"] == "syn"]) == 15
    jsonable = log.to_jsonable()
    assert jsonable["counts"]["syn"] == 15
    # Spoofed sources stay within the configured pool.
    assert len({e["src"] for e in log.events if e["kind"] == "syn"}) <= 4


def test_churn_cycles_open_then_reset():
    bed, server, attacker = build()
    ctx = server.new_context()
    ctx.listen(7000, backlog=256)
    bed.sim.process(attacker.conn_churn(10, 2_000), name="churn")
    bed.sim.run(until=20_000_000)
    counts = attacker.log.counts
    assert counts.get("churn-syn") == 10
    # Each completed handshake is immediately reset.
    assert counts.get("churn-rst", 0) > 0
    assert counts.get("churn-rst", 0) <= 10


def test_incast_burst_shape():
    bed, server, attacker = build()
    bed.sim.process(
        attacker.incast(5, burst_size=2, interval_ns=10_000, src_pool=4), name="incast"
    )
    bed.sim.run(until=10_000_000)
    events = [e for e in attacker.log.events if e["kind"] == "incast-junk"]
    # n_bursts * src_pool * burst_size frames, all flag-less junk.
    assert len(events) == 5 * 4 * 2
    # Every frame of one burst is injected at the same instant — the
    # synchronized arrival that defines incast.
    by_instant = {}
    for event in events:
        by_instant[event["at"]] = by_instant.get(event["at"], 0) + 1
    assert sorted(by_instant.values()) == [8] * 5


def test_attack_interval_mixer():
    # 10:1 attack:benign at a 5us benign request interval -> 500ns.
    assert attack_interval_ns(5_000, 10) == 500
    assert attack_interval_ns(5_000, 0.5) == 10_000
    # Never zero, no matter how hostile the ratio.
    assert attack_interval_ns(10, 10_000) == 1


def test_rst_reflection_counter():
    # SYNs to a closed port draw RSTs; the attacker's rsts_received
    # counter is the amplification measurement the incast gate uses.
    bed, server, attacker = build()
    attacker.target_port = 9999  # nothing listens there
    bed.sim.process(attacker.syn_flood(10, 1_000, src_pool=2), name="flood")
    bed.sim.run(until=10_000_000)
    assert attacker.rsts_received == 10
