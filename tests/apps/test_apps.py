"""Application-level tests: protocol codecs, echo server, memcached
with memtier load, RPC clients — on FlexTOE and a baseline stack."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import EchoServer, MemcachedServer, MemtierClient
from repro.apps.memcached import (
    OP_GET,
    OP_SET,
    STATUS_MISS,
    STATUS_OK,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.apps.rpc import ClosedLoopClient, OpenLoopClient
from repro.baselines import add_tas_host
from repro.harness import Testbed


@given(
    st.sampled_from([OP_GET, OP_SET]),
    st.binary(min_size=1, max_size=255),
    st.binary(min_size=0, max_size=1000),
)
def test_request_codec_roundtrip(op, key, value):
    encoded = encode_request(op, key, value)
    parsed = decode_request(encoded + b"trailing")
    assert parsed == (op, key, value, len(encoded))


@given(st.binary(min_size=0, max_size=500))
def test_response_codec_roundtrip(value):
    encoded = encode_response(STATUS_OK, value)
    status, parsed, consumed = decode_response(encoded)
    assert (status, parsed, consumed) == (STATUS_OK, value, len(encoded))


def test_incomplete_requests_return_none():
    full = encode_request(OP_SET, b"key", b"value")
    for cut in range(len(full)):
        assert decode_request(full[:cut]) is None


def build_bed(stack="flextoe"):
    bed = Testbed(seed=5)
    if stack == "flextoe":
        server = bed.add_flextoe_host("server")
    else:
        server = add_tas_host(bed, "server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    return bed, server, client


@pytest.mark.parametrize("stack", ["flextoe", "tas"])
def test_echo_server_closed_loop(stack):
    bed, server, client = build_bed(stack)
    server_ctx = server.new_context()
    client_ctx = client.new_context()
    echo = EchoServer(server_ctx, 7000, request_size=64)
    bed.sim.process(echo.run(), name="echo")
    rpc = ClosedLoopClient(client_ctx, server.ip, 7000, request_size=64, response_size=64, warmup=2)
    proc = bed.sim.process(rpc.run(30), name="rpc")
    bed.sim.run(until=proc)
    assert rpc.completed == 30
    assert echo.requests_served >= 30
    assert rpc.histogram.count == 28
    assert rpc.histogram.percentile(50) > 0


def test_echo_server_app_delay_increases_latency():
    def median_with_delay(delay):
        bed, server, client = build_bed()
        echo = EchoServer(server.new_context(), 7000, request_size=64, app_delay_cycles=delay)
        bed.sim.process(echo.run(), name="echo")
        rpc = ClosedLoopClient(client.new_context(), server.ip, 7000, 64, 64, warmup=2)
        proc = bed.sim.process(rpc.run(20), name="rpc")
        bed.sim.run(until=proc)
        return rpc.histogram.percentile(50)

    fast = median_with_delay(0)
    slow = median_with_delay(200_000)  # 100 us at 2 GHz
    assert slow > fast + 90_000


def test_open_loop_client_pipelines():
    bed, server, client = build_bed()
    echo = EchoServer(server.new_context(), 7000, request_size=128)
    bed.sim.process(echo.run(), name="echo")
    rpc = OpenLoopClient(client.new_context(), server.ip, 7000, 128, 128, pipeline=8)
    bed.sim.process(rpc.run(), name="rpc")
    bed.sim.run(until=20_000_000)
    rpc.stop = True
    assert rpc.completed > 20


@pytest.mark.parametrize("stack", ["flextoe", "tas"])
def test_memcached_with_memtier(stack):
    bed, server, client = build_bed(stack)
    mc = MemcachedServer(server.new_context(), 11211)
    bed.sim.process(mc.run(), name="memcached")
    tier = MemtierClient(client.new_context(), server.ip, 11211, warmup=5, key_space=5)
    proc = bed.sim.process(tier.run(60), name="memtier")
    bed.sim.run(until=proc)
    assert tier.completed == 60
    assert mc.gets > 0 and mc.sets > 0
    assert mc.hits > 0
    assert tier.histogram.count == 55


def test_memcached_miss_path():
    bed, server, client = build_bed()
    mc = MemcachedServer(server.new_context(), 11211)
    bed.sim.process(mc.run(), name="memcached")
    ctx = client.new_context()
    results = {}

    def client_app():
        sock = yield from ctx.connect(server.ip, 11211)
        yield from ctx.send(sock, encode_request(OP_GET, b"absent-key"))
        data = b""
        while decode_response(data) is None:
            data += yield from ctx.recv(sock, 1024)
        status, value, _ = decode_response(data)
        results["status"] = status
        yield from ctx.send(sock, encode_request(OP_SET, b"absent-key", b"now-present"))
        data = b""
        while decode_response(data) is None:
            data += yield from ctx.recv(sock, 1024)
        yield from ctx.send(sock, encode_request(OP_GET, b"absent-key"))
        data = b""
        while decode_response(data) is None:
            data += yield from ctx.recv(sock, 1024)
        status, value, _ = decode_response(data)
        results["value"] = value

    proc = bed.sim.process(client_app(), name="client")
    bed.sim.run(until=proc)
    assert results["status"] == STATUS_MISS
    assert results["value"] == b"now-present"
