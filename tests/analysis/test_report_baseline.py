"""Report rendering, finding identity, and the --baseline diff mode."""

import json

import pytest

from repro.analysis import cli
from repro.analysis.report import (
    PASS_STAGE,
    Finding,
    diff_findings,
    load_report,
    render_json,
    render_text,
)


def _finding(code="stage-writes-proto", path="/a/src/repro/flextoe/stages.py", line=10, message="m"):
    return Finding(PASS_STAGE, path, line, code, message)


def test_json_report_carries_via_chain():
    finding = Finding(PASS_STAGE, "f.py", 3, "stage-writes-proto", "msg", via=("A.p", "helper"))
    document = json.loads(render_json([finding]))
    assert document["findings"][0]["via"] == ["A.p", "helper"]
    assert "via A.p -> helper" in render_text([finding])


def test_diff_ignores_line_drift_and_checkout_prefix():
    baseline = json.loads(render_json([_finding(line=10)]))
    # Same finding from another checkout, shifted by an unrelated edit.
    fresh = _finding(path="/other/machine/repro/flextoe/stages.py", line=42)
    assert diff_findings([fresh], baseline) == []


def test_diff_reports_only_new_findings():
    baseline = json.loads(render_json([_finding(message="old")]))
    old = _finding(message="old")
    new = _finding(message="new", code="stage-writes-pre")
    assert diff_findings([old, new], baseline) == [new]


def test_diff_against_empty_baseline_keeps_everything():
    baseline = json.loads(render_json([]))
    finding = _finding()
    assert diff_findings([finding], baseline) == [finding]


@pytest.fixture
def fake_run_all(monkeypatch):
    state = {"findings": []}

    def run_all(root=None):
        return list(state["findings"]), {"stage-race": 1}

    monkeypatch.setattr(cli, "run_all", run_all)
    return state


def test_cli_baseline_suppresses_known_findings(fake_run_all, tmp_path, capsys):
    fake_run_all["findings"] = [_finding(message="known")]
    baseline_path = tmp_path / "baseline.json"
    assert cli.main(["--json"]) == 1
    baseline_path.write_text(capsys.readouterr().out)

    # Same findings against the baseline: clean exit.
    assert cli.main(["--baseline", str(baseline_path)]) == 0
    out = capsys.readouterr().out
    assert "baseline-accepted" in out

    # A new finding still fails.
    fake_run_all["findings"].append(_finding(message="fresh regression", line=99))
    assert cli.main(["--baseline", str(baseline_path)]) == 1
    assert "fresh regression" in capsys.readouterr().out


def test_cli_without_baseline_fails_on_any_finding(fake_run_all):
    fake_run_all["findings"] = [_finding()]
    assert cli.main([]) == 1
    fake_run_all["findings"] = []
    assert cli.main([]) == 0


def test_load_report_round_trip(tmp_path):
    path = tmp_path / "report.json"
    path.write_text(render_json([_finding()], {"stage-race": 6}))
    document = load_report(str(path))
    assert document["version"] == 3
    assert document["summary"]["checked"]["stage-race"] == 6
