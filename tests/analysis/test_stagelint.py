"""Stage read/write-set extraction and the ownership race lint."""

import textwrap

from repro.analysis.stagelint import (
    extract_access_sets,
    lint_source,
    lint_stages,
    partition_ownership,
)

GOOD_STAGE = textwrap.dedent(
    """
    class PreStage:
        def program(self, thread):
            while True:
                work = yield self.dp.pre_in.get()
                record = self.dp.conn_table.get(work.conn_index)
                group = record.pre.flow_group
                yield self.dp.proto_rings[group].put(work)

    class ProtocolStage:
        def program(self, thread):
            while True:
                work = yield self.ring.get()
                record = self.dp.conn_table.get(work.conn_index)
                state = record.proto
                state.seq += 1
                state.ack = work.seg_ack
    """
)

RACY_STAGE = textwrap.dedent(
    """
    class PreStage:
        def program(self, thread):
            while True:
                work = yield self.dp.pre_in.get()
                record = self.dp.conn_table.get(work.conn_index)
                record.proto.seq = 0           # race: pre writes proto state
                state = record.proto
                state.ack += 1                 # race via alias
                record.pre.flow_group = 3      # pre partition is immutable

    class PostStage:
        def program(self, thread):
            while True:
                work = yield self.ring.get()
                record = self.dp.conn_table.get(work.conn_index)
                record.post.cnt_ackb += 1      # legitimate: post owns post
    """
)

RACY_MODULE = textwrap.dedent(
    """
    class CountingModule:
        def handle(self, frame, metadata, record):
            record.post.cnt_ackb += 1          # modules never touch state
            return frame
    """
)


def test_partition_ownership_parses_slots():
    ownership = partition_ownership()
    assert ownership["flow_group"] == "pre"
    assert ownership["seq"] == "proto"
    assert ownership["ack"] == "proto"
    assert ownership["cnt_ackb"] == "post"
    assert ownership["rx_region"] == "post"


def test_access_sets_track_aliases_and_partitions():
    access = extract_access_sets(GOOD_STAGE, "good.py")
    pre = access["PreStage.program"]
    assert "pre.flow_group" in pre["reads"]
    assert pre["writes"] == set()
    proto = access["ProtocolStage.program"]
    assert {"proto.seq", "proto.ack"} <= proto["writes"]
    assert proto["role"] == "protocol"


def test_good_stage_is_clean():
    _, findings = lint_source(GOOD_STAGE, "good.py")
    assert findings == []


def test_racy_stage_flagged():
    _, findings = lint_source(RACY_STAGE, "racy.py")
    codes = sorted(f.code for f in findings)
    assert codes == ["stage-writes-pre", "stage-writes-proto", "stage-writes-proto"]
    # PostStage writing its own partition is not flagged.
    assert not any("PostStage" in f.message for f in findings)


def test_module_writes_flagged():
    _, findings = lint_source(RACY_MODULE, "module.py")
    assert [f.code for f in findings] == ["module-writes-state"]
    assert "one-shot" in findings[0].message


def test_unknown_attribute_flagged():
    source = textwrap.dedent(
        """
        class ProtocolStage:
            def program(self, thread):
                record.proto.not_a_slot = 1
                yield None
        """
    )
    _, findings = lint_source(source, "typo.py")
    assert [f.code for f in findings] == ["unknown-state-attr"]


def test_state_parameter_convention_is_protocol_owned():
    # A parameter named ``state`` is the connection's ProtocolState;
    # writes through it from a non-protocol stage are races.
    source = textwrap.dedent(
        """
        class DmaStage:
            def _process(self, thread, work, state):
                state.next_ts = 0
                yield None
        """
    )
    _, findings = lint_source(source, "dma.py")
    assert [f.code for f in findings] == ["stage-writes-proto"]


def test_real_data_path_is_clean():
    assert lint_stages() == []
