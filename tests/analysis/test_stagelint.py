"""Stage read/write-set extraction and the ownership race lint."""

import textwrap

from repro.analysis.stagelint import (
    atomic_registry,
    build_program,
    extract_access_sets,
    lint_atomicity,
    lint_atomicity_program,
    lint_program,
    lint_source,
    lint_stages,
    partition_ownership,
    summarize,
)

GOOD_STAGE = textwrap.dedent(
    """
    class PreStage:
        def program(self, thread):
            while True:
                work = yield self.dp.pre_in.get()
                record = self.dp.conn_table.get(work.conn_index)
                group = record.pre.flow_group
                yield self.dp.proto_rings[group].put(work)

    class ProtocolStage:
        def program(self, thread):
            while True:
                work = yield self.ring.get()
                record = self.dp.conn_table.get(work.conn_index)
                state = record.proto
                state.seq += 1
                state.ack = work.seg_ack
    """
)

RACY_STAGE = textwrap.dedent(
    """
    class PreStage:
        def program(self, thread):
            while True:
                work = yield self.dp.pre_in.get()
                record = self.dp.conn_table.get(work.conn_index)
                record.proto.seq = 0           # race: pre writes proto state
                state = record.proto
                state.ack += 1                 # race via alias
                record.pre.flow_group = 3      # pre partition is immutable

    class PostStage:
        def program(self, thread):
            while True:
                work = yield self.ring.get()
                record = self.dp.conn_table.get(work.conn_index)
                record.post.cnt_ackb += 1      # legitimate: post owns post
    """
)

RACY_MODULE = textwrap.dedent(
    """
    class CountingModule:
        def handle(self, frame, metadata, record):
            record.post.cnt_ackb += 1          # modules never touch state
            return frame
    """
)


def test_partition_ownership_parses_slots():
    ownership = partition_ownership()
    assert ownership["flow_group"] == "pre"
    assert ownership["seq"] == "proto"
    assert ownership["ack"] == "proto"
    assert ownership["cnt_ackb"] == "post"
    assert ownership["rx_region"] == "post"


def test_access_sets_track_aliases_and_partitions():
    access = extract_access_sets(GOOD_STAGE, "good.py")
    pre = access["PreStage.program"]
    assert "pre.flow_group" in pre["reads"]
    assert pre["writes"] == set()
    proto = access["ProtocolStage.program"]
    assert {"proto.seq", "proto.ack"} <= proto["writes"]
    assert proto["role"] == "protocol"


def test_good_stage_is_clean():
    _, findings = lint_source(GOOD_STAGE, "good.py")
    assert findings == []


def test_racy_stage_flagged():
    _, findings = lint_source(RACY_STAGE, "racy.py")
    codes = sorted(f.code for f in findings)
    assert codes == ["stage-writes-pre", "stage-writes-proto", "stage-writes-proto"]
    # PostStage writing its own partition is not flagged.
    assert not any("PostStage" in f.message for f in findings)


def test_module_writes_flagged():
    _, findings = lint_source(RACY_MODULE, "module.py")
    assert [f.code for f in findings] == ["module-writes-state"]
    assert "one-shot" in findings[0].message


def test_unknown_attribute_flagged():
    source = textwrap.dedent(
        """
        class ProtocolStage:
            def program(self, thread):
                record.proto.not_a_slot = 1
                yield None
        """
    )
    _, findings = lint_source(source, "typo.py")
    assert [f.code for f in findings] == ["unknown-state-attr"]


def test_state_parameter_convention_is_protocol_owned():
    # A parameter named ``state`` is the connection's ProtocolState;
    # writes through it from a non-protocol stage are races.
    source = textwrap.dedent(
        """
        class DmaStage:
            def _process(self, thread, work, state):
                state.next_ts = 0
                yield None
        """
    )
    _, findings = lint_source(source, "dma.py")
    assert [f.code for f in findings] == ["stage-writes-proto"]


def test_real_data_path_is_clean():
    assert lint_stages() == []


# -- interprocedural summaries ------------------------------------------------

# A statecache-style writeback reached through two call levels: the
# stage calls the cache object's flush, which calls a module-level
# delivery helper that performs the store through its parameter.
HELPER_CHAIN = textwrap.dedent(
    """
    def seqr_deliver(proto, position):
        proto.rx_pos = position

    class StateCache:
        def flush(self, record):
            seqr_deliver(record.proto, 0)

    class DmaStage:
        def _process(self, thread, work):
            record = self.dp.conn_table.get(work.conn_index)
            self.cache.flush(record)
            yield None
    """
)


def test_helper_writeback_attributed_to_calling_stage():
    _, findings = lint_source(HELPER_CHAIN, "chain.py")
    assert [f.code for f in findings] == ["stage-writes-proto"]
    finding = findings[0]
    # Anchored at the store inside the helper, attributed to the stage.
    assert "DmaStage._process" in finding.message
    assert finding.via == ("DmaStage._process", "StateCache.flush", "seqr_deliver")
    assert finding.line == 3  # the proto.rx_pos store


def test_same_helpers_called_by_protocol_stage_are_legal():
    source = HELPER_CHAIN.replace(
        "class DmaStage:", "class ProtocolStage:"
    )
    _, findings = lint_source(source, "chain.py")
    assert findings == []


def test_recursive_helpers_do_not_diverge():
    source = textwrap.dedent(
        """
        def ping(record, depth):
            pong(record, depth)

        def pong(record, depth):
            ping(record, depth)
            record.proto.seq = 0

        class PreStage:
            def program(self, thread):
                record = self.dp.conn_table.get(0)
                ping(record, 1)
                yield None
        """
    )
    _, findings = lint_source(source, "cycle.py")
    assert [f.code for f in findings] == ["stage-writes-proto"]
    assert findings[0].via[0] == "PreStage.program"


def test_summaries_substitute_parameter_bindings():
    program = build_program([(HELPER_CHAIN, "chain.py")], partition_ownership())
    summaries, cycles = summarize(program)
    assert not cycles
    entries = summaries["DmaStage._process"]
    assert any(
        token == "proto" and attr == "rx_pos" and chain[-1] == "seqr_deliver"
        for token, attr, _line, _file, _rmw, chain in entries
    )


def test_direct_violation_not_duplicated_through_callers():
    # The helper's store is illegal for *every* data-path caller only
    # when the helper itself is a stage; here the write is flagged once
    # at the module (direct) and not re-reported via the caller.
    source = textwrap.dedent(
        """
        class CountingModule:
            def handle(self, frame, metadata, record):
                self._bump(record)
                return frame

            def _bump(self, record):
                record.post.cnt_ackb += 1
        """
    )
    _, findings = lint_source(source, "module.py")
    # One finding: the direct one at _bump (itself module code); the
    # summary-attributed copy via handle is suppressed as a duplicate.
    assert [f.code for f in findings] == ["module-writes-state"]
    assert findings[0].via == ()
    assert "CountingModule._bump" in findings[0].message


# -- atomicity of replicated-state writes -------------------------------------


def test_atomic_registry_parses_declarations():
    registry = atomic_registry()
    assert registry == {
        "cnt_ackb": "post",
        "cnt_ecnb": "post",
        "cnt_fretx": "post",
        "hb_beats": "heartbeat",
    }


ATOMIC_MATRIX = textwrap.dedent(
    """
    class PostStage:
        def _process(self, thread, work):
            record = self.dp.conn_table.get(work.conn_index)
            post = record.post
            post.cnt_ackb += 128            # declared counter: accepted
            post.cnt_ecnb = post.cnt_ecnb + 64  # declared, RMW spelled out: accepted
            post.rate = 5                   # plain store, not an RMW: accepted
            post.rtt_est = (7 * post.rtt_est + 10) // 8  # undeclared RMW: flagged
            self._bump(post)
            yield None

        def _bump(self, post):
            post.cnt_fretx += 1             # declared, via helper: accepted
            post.opaque += 1                # undeclared RMW via helper: flagged
    """
)


def test_atomicity_accept_reject_matrix():
    ownership = partition_ownership()
    program = build_program([(ATOMIC_MATRIX, "post.py")], ownership)
    findings = lint_atomicity_program(program, ownership, atomic_registry())
    assert [f.code for f in findings] == [
        "replicated-unatomic-rmw",
        "replicated-unatomic-rmw",
    ]
    attrs = {f.message.split("post.")[1].split(" ")[0] for f in findings}
    assert attrs == {"rtt_est", "opaque"}
    helper_finding = next(f for f in findings if "opaque" in f.message)
    assert helper_finding.via == ("PostStage._process", "PostStage._bump")


def test_atomic_add_on_undeclared_field_flagged():
    source = textwrap.dedent(
        """
        class PostStage:
            def _process(self, thread, work):
                record = self.dp.conn_table.get(work.conn_index)
                atomic_add(record.post, "rtt_est", 1)
                yield None
        """
    )
    ownership = partition_ownership()
    program = build_program([(source, "post.py")], ownership)
    findings = lint_atomicity_program(program, ownership, atomic_registry())
    assert [f.code for f in findings] == ["atomic-undeclared-add"]


def test_serialized_protocol_stage_rmw_not_flagged():
    # The protocol stage is serialized per flow group; its RMWs on its
    # own partition are not replication races.
    source = textwrap.dedent(
        """
        class ProtocolStage:
            def _process(self, thread, work, state):
                state.seq += 1
                yield None
        """
    )
    ownership = partition_ownership()
    program = build_program([(source, "proto.py")], ownership)
    assert lint_atomicity_program(program, ownership, atomic_registry()) == []


def test_real_data_path_atomicity_is_clean():
    assert lint_atomicity() == []
