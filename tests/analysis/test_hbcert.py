"""Commutability certificate: export, independent check, tamper rejection."""

import copy

import pytest

from repro.analysis import hbcert


@pytest.fixture(scope="module")
def cert():
    return hbcert.export_commute_certificate()


def test_certificate_round_trips_through_checker(cert):
    assert hbcert.check_commute_certificate(cert)


def test_hc_window_updates_are_proven_commutative(cert):
    ops = {entry["op"]: entry for entry in cert["hc_ops"]}
    # The batched-descriptor facts (§3.1.1): window updates are pure
    # descriptor-carried deltas, so batch application order is free.
    assert ops["HC_TX_UPDATE"]["self_commutes"]
    assert ops["HC_RX_UPDATE"]["self_commutes"]
    assert ops["HC_TX_UPDATE"]["delta"] == ["tx_avail"]
    assert ops["HC_RX_UPDATE"]["delta"] == ["rx_avail"]
    # Probe/retransmit rewrite state from state: order-sensitive.
    assert not ops["HC_PROBE"]["self_commutes"]
    assert not ops["HC_RETRANSMIT"]["self_commutes"]
    pairs = {(p["a"], p["b"]): p["commute"] for p in cert["hc_pairs"]}
    assert pairs[("HC_RX_UPDATE", "HC_TX_UPDATE")]
    assert not pairs[("HC_PROBE", "HC_TX_UPDATE")]


def test_all_stage_pairs_commute_at_baseline(cert):
    assert cert["stage_pairs"], "no stage pairs certified"
    assert all(pair["commute"] for pair in cert["stage_pairs"])
    assert all(pair["conflicts"] == [] for pair in cert["stage_pairs"])


def test_digest_binds_certificate_to_sources(cert):
    tampered = copy.deepcopy(cert)
    tampered["digest"] = "0" * 64
    with pytest.raises(hbcert.CommuteCertError, match="digest"):
        hbcert.check_commute_certificate(tampered)


def test_version_mismatch_is_rejected(cert):
    tampered = copy.deepcopy(cert)
    tampered["version"] = hbcert.CERT_VERSION + 1
    with pytest.raises(hbcert.CommuteCertError, match="version"):
        hbcert.check_commute_certificate(tampered)


def _leaf_mutations(node, path=()):
    """Every (path, mutated value) for each scalar/list leaf in a fact."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _leaf_mutations(value, path + (key,))
    elif isinstance(node, list):
        if all(not isinstance(item, (dict, list)) for item in node):
            yield path, node + ["__tampered__"]
            if node:
                yield path, node[:-1]
        else:
            for index, item in enumerate(node):
                yield from _leaf_mutations(item, path + (index,))
    elif isinstance(node, bool):
        yield path, not node
    elif isinstance(node, int):
        yield path, node + 1
    elif isinstance(node, str):
        yield path, node + "x"
    elif node is None:
        yield path, "__tampered__"


def _apply(cert, path, value):
    mutated = copy.deepcopy(cert)
    target = mutated
    for key in path[:-1]:
        target = target[key]
    target[path[-1]] = value
    return mutated


def test_every_single_fact_mutation_is_rejected(cert):
    mutations = list(_leaf_mutations({k: cert[k] for k in ("fields", "stage_pairs", "hc_ops", "hc_pairs", "model", "files")}))
    assert len(mutations) > 50  # the sweep is real, not vacuous
    for path, value in mutations:
        tampered = _apply(cert, path, value)
        with pytest.raises(hbcert.CommuteCertError):
            hbcert.check_commute_certificate(tampered)


def test_checker_rederives_pair_facts_independently(cert):
    # Flip one commute bit while leaving every base fact intact: the
    # checker's own derivation logic must catch it (not just equality
    # against a fresh export).
    tampered = copy.deepcopy(cert)
    tampered["hc_pairs"][0]["commute"] = not tampered["hc_pairs"][0]["commute"]
    with pytest.raises(hbcert.CommuteCertError, match="HC-pair"):
        hbcert.check_commute_certificate(tampered)
    tampered = copy.deepcopy(cert)
    tampered["stage_pairs"][0]["commute"] = not tampered["stage_pairs"][0]["commute"]
    with pytest.raises(hbcert.CommuteCertError, match="stage-pair"):
        hbcert.check_commute_certificate(tampered)


def test_certificate_json_is_canonical(cert):
    rendered = hbcert.certificate_json(cert)
    assert rendered == hbcert.certificate_json(hbcert.export_commute_certificate())
