"""Dead-code / dead-store lint for XDP programs."""

from repro.analysis.deadcode import lint_program
from repro.xdp.asm import assemble
from repro.xdp.builtins import ASM_BUILTINS


def test_all_builtins_clean():
    for name, factory in sorted(ASM_BUILTINS.items()):
        program, maps = factory()
        assert lint_program(name, program, maps) == [], name


def test_refinement_unreachable_branch_flagged():
    # r5 is proven [3, 3]; the jeq r5, 7 edge can never be taken.
    program = assemble(
        """
        mov r5, 3
        jeq r5, 7, dead
        mov r0, 1
        exit
    dead:
        mov r0, 0
        exit
    """
    )
    findings = lint_program("t", program, None)
    codes = {(code, index) for code, index, _ in findings}
    assert ("dead-insn", 4) in codes
    assert ("dead-insn", 5) in codes
    assert not any(code == "dead-store" for code, _, _ in findings)


def test_unread_stack_store_flagged():
    program = assemble(
        """
        mov r5, 42
        stxdw [r10-8], r5
        mov r0, 1
        exit
    """
    )
    findings = lint_program("t", program, None)
    assert [(code, index) for code, index, _ in findings] == [("dead-store", 1)]


def test_stack_store_read_back_not_flagged():
    program = assemble(
        """
        mov r5, 42
        stxdw [r10-8], r5
        ldxdw r0, [r10-8]
        exit
    """
    )
    assert lint_program("t", program, None) == []


def test_helper_key_read_keeps_store_live():
    # The stored word is the firewall's lookup key: read by the helper,
    # not by any load, so map-aware liveness must keep it.
    from repro.xdp.builtins.firewall import firewall_asm_program

    program, maps = firewall_asm_program()
    assert lint_program("firewall", program, maps) == []


def test_store_on_one_path_live_on_that_path():
    # The store is read on the taken path only; liveness joins paths,
    # so it must not be flagged.
    program = assemble(
        """
        ldxdw r2, [r1+0]
        mov r5, 9
        stxw [r10-4], r5
        jeq r2, 0, skip
        ldxw r0, [r10-4]
        exit
    skip:
        mov r0, 1
        exit
    """
    )
    assert lint_program("t", program, None) == []


def test_unverifiable_program_yields_no_findings():
    # Uninitialized-register programs are the verifier pass's report.
    program = assemble("mov r0, r9\nexit")
    assert lint_program("t", program, None) == []
