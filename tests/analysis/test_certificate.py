"""Proof-carrying compilation certificates: export, check, tampering.

The trust story under test: :func:`check_certificate` must accept every
honestly exported certificate and reject *any* mutation — of the
abstract states, the per-instruction facts (elision decisions), or the
program digest — because the JIT elides run-time guards purely on the
checker's say-so.
"""

import copy

import pytest

from repro.analysis.certificate import (
    CertificateError,
    ProofTable,
    check_certificate,
    export_certificate,
    program_digest,
)
from repro.xdp.asm import assemble
from repro.xdp.builtins import ASM_BUILTINS


def _all_builtins():
    return [(name, factory()) for name, factory in sorted(ASM_BUILTINS.items())]


def test_every_builtin_exports_and_checks():
    for name, (program, maps) in _all_builtins():
        cert = export_certificate(program, maps)
        check_certificate(program, cert, maps)  # must not raise
        stats = cert.elision_stats()
        assert stats["insns"] == len(program)
        total = stats["mem_elided"] + stats["mem_retained"]
        if total:
            # Acceptance floor: ≥80 % of memory guards proven away.
            assert stats["mem_elided"] / total >= 0.8, (name, stats)


def test_certificate_round_trips_through_json():
    for name, (program, maps) in _all_builtins():
        cert = export_certificate(program, maps)
        clone = ProofTable.from_jsonable(cert.to_jsonable())
        assert clone.digest == cert.digest
        assert clone.facts == cert.facts
        check_certificate(program, clone, maps)


def test_digest_binds_certificate_to_program():
    program, maps = ASM_BUILTINS["firewall"]()
    other, other_maps = ASM_BUILTINS["filter"]()
    cert = export_certificate(program, maps)
    with pytest.raises(CertificateError):
        check_certificate(other, cert, other_maps)


def test_single_instruction_state_mutation_rejected():
    """Weakening any one instruction's certified packet bound must be
    caught — that bound is exactly what licenses guard elision."""
    program, maps = ASM_BUILTINS["firewall"]()
    cert = export_certificate(program, maps)
    rejected = 0
    for index in range(len(program)):
        doc = copy.deepcopy(cert.to_jsonable())
        doc["states"][index]["pkt_valid"] = (doc["states"][index]["pkt_valid"] or 0) + 1000
        tampered = ProofTable.from_jsonable(doc)
        try:
            check_certificate(program, tampered, maps)
        except CertificateError:
            rejected += 1
    assert rejected == len(program)


def test_fact_tampering_rejected():
    """Flipping a retained guard to 'elide' without a proof is the
    attack the checker exists to stop."""
    program, maps = ASM_BUILTINS["splice"]()
    cert = export_certificate(program, maps)
    for index, fact in enumerate(cert.facts):
        if not isinstance(fact, dict) or fact.get("type") != "mem":
            continue
        doc = copy.deepcopy(cert.to_jsonable())
        doc["facts"][index]["elide"] = not doc["facts"][index]["elide"]
        tampered = ProofTable.from_jsonable(doc)
        with pytest.raises(CertificateError):
            check_certificate(program, tampered, maps)


def test_division_guard_requires_nonzero_proof():
    # r2's range includes zero -> guard retained; r3 proven nonzero ->
    # guard elided.
    program = assemble(
        """
        ldxdw r2, [r1+0]
        mov r2, 5
        jle r2, 9, next
        mov r2, 0
    next:
        mov r3, 7
        mov r0, 100
        div r0, r2
        div r0, r3
        exit
    """
    )
    cert = export_certificate(program, {})
    check_certificate(program, cert, {})
    div_facts = [f for f in cert.facts if isinstance(f, dict) and f.get("type") == "div"]
    assert [f["nonzero"] for f in div_facts] == [False, True]

    # Claiming the guarded division is safe must be rejected.
    doc = copy.deepcopy(cert.to_jsonable())
    for entry in doc["facts"]:
        if isinstance(entry, dict) and entry.get("type") == "div" and not entry["nonzero"]:
            entry["nonzero"] = True
    with pytest.raises(CertificateError):
        check_certificate(program, ProofTable.from_jsonable(doc), {})


def test_truncated_and_padded_certificates_rejected():
    program, maps = ASM_BUILTINS["vlan"]()
    cert = export_certificate(program, maps)
    short = ProofTable(cert.digest, cert.states[:-1], cert.facts[:-1])
    with pytest.raises(CertificateError):
        check_certificate(program, short, maps)
    padded = ProofTable(cert.digest, cert.states + [cert.states[-1]], cert.facts + [cert.facts[-1]])
    with pytest.raises(CertificateError):
        check_certificate(program, padded, maps)


def test_program_digest_is_stable_and_sensitive():
    program, _ = ASM_BUILTINS["null"]()
    assert program_digest(program) == program_digest(program)
    other = assemble("mov r0, 2\nexit")
    assert program_digest(program) != program_digest(other)
