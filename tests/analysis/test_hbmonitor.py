"""Runtime validation of the static HB model (REPRO_SANITIZE)."""

import pytest

from repro.analysis import hbmonitor, sanitizer
from repro.analysis.hbmonitor import HBViolationError, _OrderBook
from repro.flextoe.descriptors import NOTIFY_RX, Notification, SegWork, WORK_RX


@pytest.fixture
def sanitized():
    sanitizer.install()
    try:
        yield
    finally:
        sanitizer.uninstall()


def _testbed_host(sanitized):
    from repro.harness import Testbed

    bed = Testbed(seed=11)
    server = bed.add_flextoe_host("server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    return bed, server, client


# -- order book -------------------------------------------------------------


def test_order_book_accepts_fifo_and_tolerates_filtered_items():
    book = _OrderBook()
    a, b, c = object(), object(), object()
    book.expect(1, a)
    book.expect(1, b)
    book.expect(1, c)
    # b arrives first: a was legitimately filtered out of the stream.
    assert book.arrive(1, b)
    assert book.arrive(1, c)


def test_order_book_detects_reordering():
    book = _OrderBook()
    a, b = object(), object()
    book.expect(1, a)
    book.expect(1, b)
    assert book.arrive(1, b)  # consumes past a
    assert not book.arrive(1, a)  # a overtaken: reorder


def test_order_book_stray_arrival_does_not_poison_the_queue():
    book = _OrderBook()
    a = object()
    book.expect(1, a)
    assert not book.arrive(1, object())  # never-expected item
    assert book.arrive(1, a)  # the real stream is intact


def test_order_book_forget_drops_per_key_state():
    book = _OrderBook()
    a = object()
    book.expect(7, a)
    book.forget(7)
    assert not book.arrive(7, a)


# -- monitor wiring ---------------------------------------------------------


def test_monitor_attaches_to_pipelined_datapath(sanitized):
    _bed, server, _client = _testbed_host(sanitized)
    dp = server.nic.datapath
    assert dp.hb_monitor is not None
    assert dp.dma_ring.tap is not None
    assert dp.ctx_ring.tap is not None


def test_end_to_end_run_is_clean_and_observed(sanitized):
    from repro.apps import EchoServer
    from repro.apps.rpc import ClosedLoopClient

    bed, server, client = _testbed_host(sanitized)
    echo = EchoServer(server.new_context(), 7000, request_size=64)
    bed.sim.process(echo.run(), name="echo")
    rpc = ClosedLoopClient(client.new_context(), server.ip, 7000, 64, 64, warmup=1)
    proc = bed.sim.process(rpc.run(5), name="rpc")
    bed.sim.run(until=proc)
    assert rpc.histogram.count >= 4
    # The monitor actually watched the pipeline, on both hosts.
    assert server.nic.datapath.hb_monitor.checked_puts > 0
    assert client.nic.datapath.hb_monitor.checked_puts > 0


# -- violation detection ----------------------------------------------------


def _work(conn=3):
    work = SegWork(WORK_RX)
    work.conn_index = conn
    return work


def test_protocol_order_violation_raises(sanitized):
    _bed, server, _client = _testbed_host(sanitized)
    monitor = server.nic.datapath.hb_monitor
    first, second = _work(), _work()
    monitor._on_post_put(first)
    monitor._on_post_put(second)
    monitor._on_dma_put(second)  # overtakes first: post_chain broken
    with pytest.raises(HBViolationError, match="post_chain"):
        monitor._on_dma_put(first)


def test_notification_order_violation_raises(sanitized):
    _bed, server, _client = _testbed_host(sanitized)
    monitor = server.nic.datapath.hb_monitor
    early = Notification(NOTIFY_RX, 1, 3, context_id=1, length=10)
    late = Notification(NOTIFY_RX, 1, 3, context_id=1, length=10)
    work_a, work_b = _work(), _work()
    work_a.notify = [early]
    work_b.notify = [late]
    monitor._on_post_put(work_a)
    monitor._on_post_put(work_b)
    monitor._on_dma_put(work_a)
    monitor._on_dma_put(work_b)
    monitor._on_ctx_put(late)  # dma_rx_chain broken
    with pytest.raises(HBViolationError, match="dma_rx_chain"):
        monitor._on_ctx_put(early)


def test_write_ahead_violation_raises(sanitized):
    _bed, server, _client = _testbed_host(sanitized)
    dp = server.nic.datapath
    monitor = dp.hb_monitor
    notification = Notification(NOTIFY_RX, 1, 3, context_id=42, length=10)
    ack = object.__new__(type("FakeFrame", (), {"pipeline_seq": None}))
    work = _work()
    work.notify = [notification]
    work.ack_frame = ack
    dp.contexts[42] = "registered-pair"  # the notification IS deliverable
    monitor._on_post_put(work)
    monitor._on_dma_put(work)
    # ACK reaches the wire-commit point before nic_deliver happened.
    with pytest.raises(HBViolationError, match="write-ahead"):
        monitor._on_wire_commit(ack)


def test_write_ahead_tolerates_unregistered_context(sanitized):
    _bed, server, _client = _testbed_host(sanitized)
    monitor = server.nic.datapath.hb_monitor
    notification = Notification(NOTIFY_RX, 1, 3, context_id=99, length=10)
    ack = object.__new__(type("FakeFrame", (), {"pipeline_seq": None}))
    work = _work()
    work.notify = [notification]
    work.ack_frame = ack
    monitor._on_post_put(work)
    monitor._on_dma_put(work)
    monitor._on_wire_commit(ack)  # context 99 never registered: no check


def test_control_plane_error_notification_is_tolerated(sanitized):
    _bed, server, _client = _testbed_host(sanitized)
    monitor = server.nic.datapath.hb_monitor
    error = Notification("error", 1, 3, context_id=1, error="timeout")
    # Delivered straight via nic_deliver, never through ctx_ring: the
    # pipeline ordering contract does not apply.
    monitor._on_ctx_event("notify", error)


def test_taps_go_quiet_after_crash(sanitized):
    _bed, server, _client = _testbed_host(sanitized)
    dp = server.nic.datapath
    monitor = dp.hb_monitor
    before = monitor.checked_puts
    dp.crashed = True
    dp.dma_ring.tap(_work())
    assert monitor.checked_puts == before
    dp.crashed = False


def test_forget_conn_clears_order_books(sanitized):
    _bed, server, _client = _testbed_host(sanitized)
    monitor = server.nic.datapath.hb_monitor
    work = _work(conn=5)
    monitor._on_post_put(work)
    monitor.forget_conn(5)
    assert not monitor._proto_order.arrive(5, work)
