"""The CFG verifier's abstract domain and path-sensitive checks."""

import pytest

from repro.analysis.dataflow import (
    MAP_VALUE,
    MAP_VALUE_OR_NULL,
    PKT_PTR,
    SCALAR,
    STACK_PTR,
    UNINIT,
    AbsState,
    RegVal,
)
from repro.analysis.verifier import VerifierError, verify
from repro.xdp import assemble
from repro.xdp.builtins import classifier_asm_program, firewall_asm_program, null_asm_program


# -- RegVal / AbsState lattice ------------------------------------------------


def test_meet_equal_values_is_identity():
    value = RegVal.scalar(7)
    assert value.meet(RegVal.scalar(7)) == value


def test_meet_differing_constants_forgets_the_constant():
    met = RegVal.scalar(7).meet(RegVal.scalar(9))
    assert met.kind == SCALAR
    assert met.const is None


def test_meet_differing_kinds_is_uninit():
    met = RegVal.scalar(7).meet(RegVal.pointer(PKT_PTR, 0))
    assert met.kind == UNINIT


def test_meet_checked_and_unchecked_map_value():
    checked = RegVal.pointer(MAP_VALUE, 0, fd=1)
    unchecked = RegVal(MAP_VALUE_OR_NULL, off=0, fd=1)
    assert checked.meet(unchecked).kind == MAP_VALUE_OR_NULL
    assert unchecked.meet(checked).kind == MAP_VALUE_OR_NULL


def test_meet_differing_pointer_offsets_forgets_offset():
    met = RegVal.pointer(STACK_PTR, -4).meet(RegVal.pointer(STACK_PTR, -8))
    assert met.kind == STACK_PTR
    assert met.off is None


def test_state_meet_intersects_stack_and_packet_facts():
    a = AbsState(stack_init=0b1111, pkt_valid=34)
    b = AbsState(stack_init=0b1100, pkt_valid=14)
    met = a.meet(b)
    assert met.stack_init == 0b1100
    assert met.pkt_valid == 14


def test_default_entry_state():
    state = AbsState()
    assert state.regs[1].kind == "ctx_ptr"
    assert state.regs[10].kind == STACK_PTR
    assert state.regs[0].is_uninit


# -- end-to-end acceptance ----------------------------------------------------


def test_builtin_programs_verify():
    for factory in (null_asm_program, firewall_asm_program, classifier_asm_program):
        program, maps = factory()
        assert verify(program, maps)


def test_packet_access_requires_bounds_proof():
    # Dereferencing packet data without comparing against data_end.
    source = """
        ldxdw r2, [r1+0]
        ldxb r0, [r2+0]
        exit
    """
    with pytest.raises(VerifierError, match="outside verified bounds"):
        verify(assemble(source))


def test_packet_access_inside_proven_bounds_accepted():
    source = """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        mov r4, r2
        add r4, 14
        jgt r4, r3, out
        ldxb r0, [r2+13]
        exit
    out:
        mov r0, 1
        exit
    """
    assert verify(assemble(source))


def test_packet_access_beyond_proven_bounds_rejected():
    source = """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        mov r4, r2
        add r4, 14
        jgt r4, r3, out
        ldxb r0, [r2+14]
        exit
    out:
        mov r0, 1
        exit
    """
    with pytest.raises(VerifierError, match="outside verified bounds"):
        verify(assemble(source))


def test_map_lookup_requires_null_check():
    source = """
        mov r5, 0
        stxw [r10-4], r5
        lddw r1, map:1
        mov r2, r10
        sub r2, 4
        call 1
        ldxw r0, [r0+0]
        exit
    """
    with pytest.raises(VerifierError, match="may be NULL"):
        verify(assemble(source))


def test_map_lookup_after_null_check_accepted():
    source = """
        mov r5, 0
        stxw [r10-4], r5
        lddw r1, map:1
        mov r2, r10
        sub r2, 4
        call 1
        jeq r0, 0, out
        ldxw r0, [r0+0]
        exit
    out:
        mov r0, 1
        exit
    """
    assert verify(assemble(source))


def test_uninitialized_stack_read_rejected():
    source = """
        ldxw r0, [r10-4]
        exit
    """
    with pytest.raises(VerifierError, match="uninitialized stack"):
        verify(assemble(source))


def test_stack_key_must_cover_key_size():
    # With map metadata, the helper's key argument is checked against
    # key_size (4); only 1 byte of the key was initialized.
    from repro.xdp import BpfHashMap

    source = """
        mov r5, 0
        stxb [r10-4], r5
        lddw r1, map:1
        mov r2, r10
        sub r2, 4
        call 1
        mov r0, 1
        exit
    """
    with pytest.raises(VerifierError, match="uninitialized stack"):
        verify(assemble(source), {1: BpfHashMap(4, 8, 16)})


def test_map_value_access_bounded_by_value_size():
    from repro.xdp import BpfHashMap

    source = """
        mov r5, 0
        stxw [r10-4], r5
        lddw r1, map:1
        mov r2, r10
        sub r2, 4
        call 1
        jeq r0, 0, out
        ldxdw r3, [r0+8]
        exit
    out:
        mov r0, 1
        exit
    """
    with pytest.raises(VerifierError, match="exceeds value size"):
        verify(assemble(source), {1: BpfHashMap(4, 8, 16)})


def test_context_is_read_only_and_bounded():
    with pytest.raises(VerifierError, match="read-only context"):
        verify(assemble("mov r2, 1\nstxw [r1+0], r2\nmov r0, 1\nexit"))
    with pytest.raises(VerifierError, match="out of bounds"):
        verify(assemble("ldxdw r2, [r1+16]\nmov r0, 1\nexit"))


def test_unreachable_code_rejected():
    with pytest.raises(VerifierError, match="unreachable"):
        verify(assemble("mov r0, 1\nja 1\nmov r0, 2\nexit"))


# -- variable-offset packet access (interval × tnum domain) -------------------

# An IPv4 parse with a variable-length header: the IHL nibble is loaded
# with ldxb, masked, scaled, folded into a packet pointer, and the
# resulting variable pointer is bounds-checked against data_end before
# the dereference. The PR-1 constants-only domain rejected this shape.
VAR_IHL_PROGRAM = """
    ldxdw r2, [r1+0]
    ldxdw r3, [r1+8]
    mov r4, r2
    add r4, 34
    jgt r4, r3, out
    ldxb r5, [r2+14]
    and r5, 15
    lsh r5, 2
    mov r6, r2
    add r6, 14
    add r6, r5
    mov r7, r6
    add r7, 4
    jgt r7, r3, out
    ldxw r0, [r6+0]
    exit
out:
    mov r0, 1
    exit
"""


def test_variable_length_ip_header_accepted():
    assert verify(assemble(VAR_IHL_PROGRAM))


def test_variable_offset_without_check_rejected():
    # Same parse, but the variable pointer is dereferenced without the
    # second data_end comparison.
    source = """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        mov r4, r2
        add r4, 34
        jgt r4, r3, out
        ldxb r5, [r2+14]
        and r5, 15
        lsh r5, 2
        mov r6, r2
        add r6, 14
        add r6, r5
        ldxw r0, [r6+0]
        exit
    out:
        mov r0, 1
        exit
    """
    with pytest.raises(VerifierError, match="outside verified bounds"):
        verify(assemble(source))


def test_variable_offset_check_too_short_rejected():
    # The data_end proof covers only 2 bytes past the variable offset;
    # the 4-byte load must still be rejected.
    source = VAR_IHL_PROGRAM.replace("add r7, 4", "add r7, 2")
    with pytest.raises(VerifierError, match="outside verified bounds"):
        verify(assemble(source))


def test_unbounded_variable_offset_rejected():
    # A full 64-bit scalar (no mask) folded into a packet pointer could
    # wrap past data_end; the fold must refuse unbounded variables.
    source = """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        ldxdw r5, [r1+0]
        mov r6, r2
        add r6, 14
        add r6, r5
        mov r7, r6
        add r7, 4
        jgt r7, r3, out
        ldxw r0, [r6+0]
        exit
    out:
        mov r0, 1
        exit
    """
    with pytest.raises(VerifierError, match="non-pointer|outside verified bounds|constant"):
        verify(assemble(source))


def test_branch_refinement_bounds_a_loaded_scalar():
    # jlt on a loaded word refines its range enough to prove a
    # constant-extra access through the checked variable pointer.
    source = """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        mov r4, r2
        add r4, 18
        jgt r4, r3, out
        ldxw r5, [r2+14]
        jge r5, 64, out
        mov r6, r2
        add r6, 14
        add r6, r5
        mov r7, r6
        add r7, 2
        jgt r7, r3, out
        ldxh r0, [r6+0]
        exit
    out:
        mov r0, 1
        exit
    """
    assert verify(assemble(source))


def test_mov32_truncation_destroys_pointer_provenance():
    # A 32-bit move of a packet pointer must not remain dereferenceable.
    source = """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        mov r4, r2
        add r4, 14
        jgt r4, r3, out
        mov32 r5, r2
        ldxb r0, [r5+0]
        exit
    out:
        mov r0, 1
        exit
    """
    with pytest.raises(VerifierError, match="non-pointer"):
        verify(assemble(source))
