"""Happens-before pipeline analyzer: model extraction, hb-race, ordering."""

import os

from repro.analysis import hblint, stagelint
from repro.analysis.report import render_json

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture(name):
    return os.path.join(FIXTURES, name)


def _with_tree(name):
    return stagelint.default_paths() + [_fixture(name)]


# -- model extraction -------------------------------------------------------


def test_model_extracts_all_stage_anchors():
    model = hblint.extract_model(hblint._read_sources(stagelint.default_paths()))
    kinds = {s.kind for s in model.stages.values()}
    assert kinds == {"pre", "proto", "post", "dma", "ctx", "nbi"}
    by_kind = {s.kind: s for s in model.stages.values()}
    assert by_kind["proto"].serializes_per_conn
    assert not by_kind["proto"].replicated
    assert by_kind["dma"].replicated and by_kind["post"].replicated


def test_model_extracts_ordering_anchors():
    model = hblint.extract_model(hblint._read_sources(stagelint.default_paths()))
    assert model.seqr_domains == {"rx_seqr": "rx_gro", "nbi_seqr": "nbi_gro"}
    assert model.ordered_rings == {"dma_ring": "conn", "ctx_ring": "context"}


def test_model_anchor_fallback_for_subset_lints():
    # A fixture linted without datapath.py still sees the production
    # ordering anchors (pulled from the real datapath module).
    model = hblint.extract_model(hblint._read_sources([_fixture("hb_dma_reorder.py")]))
    assert model.ordered_rings.get("ctx_ring") == "context"
    assert "nbi_seqr" in model.seqr_domains


# -- hb-race ----------------------------------------------------------------


def test_baseline_tree_has_no_hb_races():
    assert hblint.lint_hb() == []


def test_baseline_tree_has_no_ordering_violations():
    assert hblint.lint_ordering() == []


def test_field_verdicts_match_the_partition_design():
    _model, verdicts = hblint.field_verdicts()
    flat = {"{}.{}".format(p, a): v for (p, a), (v, _fp) in verdicts.items()}
    # The TCP machine is owned by the atomic stage...
    assert flat["proto.next_ts"] == hblint.VERDICT_OWNED
    assert flat["proto.seq"] == hblint.VERDICT_OWNED
    # ...identification state is control-plane-installed, read-only...
    assert flat["pre.peer_mac"] == hblint.VERDICT_IMMUTABLE
    # ...and app-interface geometry is read by post AND dma, but written
    # by no stage: still safe.
    assert flat["post.rx_size"] == hblint.VERDICT_IMMUTABLE
    assert hblint.VERDICT_RACE not in flat.values()


def test_cross_stage_proto_read_is_an_hb_race():
    # The pre-PR-8 timestamp-echo bug: a DMA replica sampling
    # record.proto.next_ts races the protocol stage's next RX update.
    findings = hblint.lint_hb(_with_tree("hb_proto_read.py"))
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "hb-race"
    assert finding.path.endswith("hb_proto_read.py")
    assert "proto.next_ts" in finding.message
    assert "'dma'" in finding.message and "'proto'" in finding.message


# -- ordering ---------------------------------------------------------------


def test_unfenced_ctx_emit_is_caught():
    # The PR-2 NOTIFY_RX reordering bug, statically: dma_rx_chain fence
    # deleted, notifications can overtake each other per connection.
    findings = hblint.lint_ordering(_with_tree("hb_dma_reorder.py"))
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "unfenced-ordered-emit"
    assert finding.path.endswith("hb_dma_reorder.py")
    assert "ctx_ring" in finding.message


def test_ack_released_before_notification_is_caught():
    findings = hblint.lint_ordering(_with_tree("hb_write_ahead.py"))
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "ack-before-notify"
    assert finding.path.endswith("hb_write_ahead.py")
    assert "piggyback_ack" in finding.message


def test_fence_spans_are_recognized():
    import ast

    source = (
        "class S:\n"
        "    STAGE_KIND = 'dma'\n"
        "    REPLICATED = True\n"
        "    def program(self, thread):\n"
        "        prev = dp.some_chain.get(key)\n"
        "        done = dp.sim.event()\n"
        "        dp.some_chain[key] = done\n"
        "        if prev is not None:\n"
        "            yield prev\n"
        "        yield dp.dma_ring.put(work)\n"
        "        done.succeed()\n"
    )
    function = ast.parse(source).body[0].body[2]
    fences = hblint._collect_fences(function)
    assert fences and all(start < end for start, end in fences)
    (start, end) = fences[0]
    assert start == 9 and end == 11


def test_findings_are_deterministically_ordered():
    paths = _with_tree("hb_dma_reorder.py") + [_fixture("hb_write_ahead.py"), _fixture("hb_proto_read.py")]
    first = hblint.lint_hb(paths) + hblint.lint_ordering(paths)
    second = hblint.lint_hb(paths) + hblint.lint_ordering(paths)
    assert render_json(first) == render_json(second)
    assert [f.to_dict() for f in first] == [f.to_dict() for f in second]
