"""Sim-process lint: wall-clock, global RNG, non-event yields."""

import textwrap

from repro.analysis.simlint import lint_source, lint_tree

FIXTURE = textwrap.dedent(
    """
    import random
    import time

    SEEDED = random.Random(7)          # allowed: private seeded generator

    def bad_process(sim):
        jitter = random.random()       # global-rng
        start = time.time()            # wall-clock
        yield                          # yield-non-event (bare)
        yield 5                        # yield-non-event (literal)

    def harness():
        return time.time()             # sim-lint: allow

    def good_process(sim, rng):
        delay = rng.stream("net").uniform(0, 1)
        yield sim.timeout(delay)
    """
)


def test_fixture_findings_in_order():
    findings = lint_source(FIXTURE, "fixture.py")
    assert [f.code for f in findings] == [
        "global-rng",
        "wall-clock",
        "yield-non-event",
        "yield-non-event",
    ]


def test_pragma_suppresses_finding():
    findings = lint_source("import time\nt = time.time()  # sim-lint: allow\n", "ok.py")
    assert findings == []


def test_seeded_rng_construction_allowed():
    findings = lint_source(
        "import random\nrng = random.Random(3)\nsys_rng = random.SystemRandom()\n", "rng.py"
    )
    assert findings == []


def test_nested_generator_not_double_reported():
    source = textwrap.dedent(
        """
        def outer(sim):
            def inner():
                yield
            yield sim.timeout(1)
        """
    )
    findings = lint_source(source, "nested.py")
    assert [f.code for f in findings] == ["yield-non-event"]


def test_repro_tree_is_clean():
    assert lint_tree() == []
