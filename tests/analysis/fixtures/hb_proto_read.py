"""Regression fixture: cross-stage protocol-state read (hb-race).

A DMA stage that samples ``record.proto.next_ts`` while stamping the
outgoing header — the pre-PR-8 timestamp-echo bug. The protocol stage
updates ``next_ts`` on every received segment, and no happens-before
edge orders a DMA replica processing segment k against the protocol
stage processing segment k+1 of the same connection, so the read races.
The fix snapshots the value in the atomic stage (``snapshot.echo_ts``).
The hb lint must report exactly one ``hb-race``.

Not imported at runtime: parsed by repro.analysis.hblint in tests
alongside the real data-path sources (which provide the proto writer).
"""


class StaleEchoDmaStage:
    """DmaStage reading the TCP machine instead of the work snapshot."""

    STAGE_KIND = "dma"
    REPLICATED = True

    def __init__(self, dp, replica_id=0):
        self.dp = dp
        self.replica_id = replica_id

    def program(self, thread):
        dp = self.dp
        while True:
            work = yield dp.dma_ring.get()
            record = dp.conn_table.get(work.conn_index)
            if record is None:
                continue
            frame = work.frame
            # BUG: protocol-owned state read outside the atomic stage.
            frame.ts_ecr = record.proto.next_ts
            dp.nbi_gro.offer(frame)
