"""Regression fixture: write-ahead rule violation (§3.1.3).

A DMA stage that keeps the completion fence but offers the segment's
ACK directly to the NBI sequencer instead of piggybacking it on the
last notification. The ACK can then reach the wire before the
notification is host-visible: a crash in between leaves the peer
believing bytes were delivered that host-side recovery never saw. The
hb lint must report exactly one ``ack-before-notify`` at the offer.

Not imported at runtime: parsed by repro.analysis.hblint in tests.
"""


class EagerAckDmaStage:
    """DmaStage releasing the ACK without waiting for nic_deliver."""

    STAGE_KIND = "dma"
    REPLICATED = True

    def __init__(self, dp, replica_id=0):
        self.dp = dp
        self.replica_id = replica_id

    def program(self, thread):
        dp = self.dp
        while True:
            work = yield dp.dma_ring.get()
            yield from self._process(thread, work)

    def _process(self, thread, work):
        dp = self.dp
        record = dp.conn_table.get(work.conn_index)
        if record is None:
            return
        post = record.post
        if work.kind == "rx":
            payload = work.rx_trimmed_payload
            prev_chain = None
            done = None
            if payload or work.notify or work.ack_frame is not None:
                prev_chain = dp.dma_rx_chain.get(work.conn_index)
                done = dp.sim.event()
                dp.dma_rx_chain[work.conn_index] = done
            if payload:
                if post.rx_region is not None:
                    post.rx_region.write(work.rx_offset, payload)
                yield dp.dma.issue(self.replica_id, len(payload))
            if prev_chain is not None and not prev_chain.triggered:
                yield prev_chain
            # BUG: the ACK must ride notifications[-1].piggyback_ack so
            # ARX releases it after nic_deliver; offering it here lets
            # it reach the wire first.
            ack_frame = work.ack_frame
            for notification in work.notify or ():
                yield dp.ctx_ring.put(notification)
            if ack_frame is not None:
                ack_frame.pipeline_seq = work.pipeline_seq
                dp.nbi_gro.offer(ack_frame)
            if done is not None:
                done.succeed()
