"""Regression fixture: the PR-2 NOTIFY_RX reordering bug, statically.

A DMA stage that emits notifications into ``ctx_ring`` *without* the
``dma_rx_chain`` fence. With replicas and variable DMA latency, a later
segment's notification overtakes an earlier one and libTOE stitches the
receive stream wrong — the exact bug the per-connection completion
chain was introduced to fix. The hb lint must report exactly one
``unfenced-ordered-emit`` at the ``ctx_ring.put`` site.

Not imported at runtime: parsed by repro.analysis.hblint in tests.
"""


class BrokenDmaStage:
    """DmaStage with the per-connection completion chain deleted."""

    STAGE_KIND = "dma"
    REPLICATED = True

    def __init__(self, dp, replica_id=0):
        self.dp = dp
        self.replica_id = replica_id

    def program(self, thread):
        dp = self.dp
        while True:
            work = yield dp.dma_ring.get()
            yield from self._process(thread, work)

    def _process(self, thread, work):
        dp = self.dp
        record = dp.conn_table.get(work.conn_index)
        if record is None:
            return
        post = record.post
        if work.kind == "rx":
            payload = work.rx_trimmed_payload
            if payload:
                if post.rx_region is not None:
                    post.rx_region.write(work.rx_offset, payload)
                yield dp.dma.issue(self.replica_id, len(payload))
            # BUG: no dma_rx_chain fence — a replica that finished a
            # later segment first delivers its notification first.
            ack_frame = work.ack_frame
            if ack_frame is not None:
                ack_frame.pipeline_seq = work.pipeline_seq
            notifications = work.notify or ()
            if notifications and ack_frame is not None:
                notifications[-1].piggyback_ack = ack_frame
                ack_frame = None
            for notification in notifications:
                yield dp.ctx_ring.put(notification)
            if ack_frame is not None:
                dp.nbi_gro.offer(ack_frame)
