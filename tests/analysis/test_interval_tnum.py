"""Soundness of the interval × tnum abstract domain (hypothesis).

Every abstract operator must over-approximate the concrete u64
semantics: if concrete values are members of the operand abstractions,
the concrete result must be a member of the abstract result. Join must
include both operands, widening must include the join, and the widening
chain must terminate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import U64, Interval, ScalarVal, Tnum

u64 = st.integers(min_value=0, max_value=U64)
small_shift = st.integers(min_value=0, max_value=63)


@st.composite
def interval_with_member(draw):
    a, b = draw(u64), draw(u64)
    lo, hi = min(a, b), max(a, b)
    return Interval(lo, hi), draw(st.integers(min_value=lo, max_value=hi))


@st.composite
def tnum_with_member(draw):
    mask = draw(u64)
    value = draw(u64) & ~mask & U64
    return Tnum(value, mask), (value | (draw(u64) & mask)) & U64


@st.composite
def scalar_with_member(draw):
    interval, x = draw(interval_with_member())
    # A tnum consistent with x: know a random subset of x's bits.
    mask = draw(u64)
    tnum = Tnum(x & ~mask & U64, mask)
    value = ScalarVal.make(interval, tnum)
    assert value.contains(x)
    return value, x


# -- lattice ------------------------------------------------------------------


@given(interval_with_member(), interval_with_member())
def test_interval_join_is_upper_bound(a, b):
    joined = a[0].join(b[0])
    assert joined.contains(a[1]) and joined.contains(b[1])


@given(interval_with_member(), interval_with_member())
def test_interval_widen_covers_join(a, b):
    widened = a[0].widen(b[0])
    assert widened.contains(a[1]) and widened.contains(b[1])


@given(interval_with_member())
def test_interval_widen_chain_terminates(a):
    # Widening against ever-growing arguments must reach a fixpoint in a
    # bounded number of steps (the threshold ladder has 4 rungs + top).
    current = a[0]
    for _ in range(6):
        grown = Interval(max(0, current.lo - 1), min(U64, current.hi + 1))
        widened = current.widen(grown)
        if widened == current:
            break
        current = widened
    assert current.widen(Interval(max(0, current.lo - 1), min(U64, current.hi + 1))) == current


@given(tnum_with_member(), tnum_with_member())
def test_tnum_join_is_upper_bound(a, b):
    joined = a[0].join(b[0])
    assert joined.contains(a[1]) and joined.contains(b[1])


@given(interval_with_member(), interval_with_member())
def test_interval_intersect_keeps_common_members(a, b):
    meet = a[0].intersect(b[0])
    if b[0].contains(a[1]):
        assert meet.contains(a[1])
    if a[0].contains(b[1]):
        assert meet.contains(b[1])


@given(scalar_with_member(), scalar_with_member())
def test_scalar_join_is_upper_bound(a, b):
    joined = a[0].join(b[0])
    assert joined.contains(a[1]) and joined.contains(b[1])


@given(scalar_with_member(), scalar_with_member())
def test_scalar_widen_covers_join(a, b):
    widened = a[0].widen(b[0])
    assert widened.contains(a[1]) and widened.contains(b[1])


# -- arithmetic soundness -----------------------------------------------------


_INTERVAL_OPS = {
    "add": lambda x, y: (x + y) & U64,
    "sub": lambda x, y: (x - y) & U64,
    "mul": lambda x, y: (x * y) & U64,
    "and_": lambda x, y: x & y,
    "or_": lambda x, y: x | y,
    "xor_": lambda x, y: x ^ y,
    "udiv": lambda x, y: x // y if y else 0,
    "umod": lambda x, y: x % y if y else x,
}


@given(st.sampled_from(sorted(_INTERVAL_OPS)), interval_with_member(), interval_with_member())
def test_interval_binary_ops_sound(op, a, b):
    result = getattr(a[0], op)(b[0])
    assert result.contains(_INTERVAL_OPS[op](a[1], b[1]))


@given(st.sampled_from(sorted(_INTERVAL_OPS)), scalar_with_member(), scalar_with_member())
def test_scalar_binary_ops_sound(op, a, b):
    result = getattr(a[0], op)(b[0])
    assert result.contains(_INTERVAL_OPS[op](a[1], b[1]))


_TNUM_OPS = {
    "add": lambda x, y: (x + y) & U64,
    "sub": lambda x, y: (x - y) & U64,
    "mul": lambda x, y: (x * y) & U64,
    "and_": lambda x, y: x & y,
    "or_": lambda x, y: x | y,
    "xor_": lambda x, y: x ^ y,
}


@given(st.sampled_from(sorted(_TNUM_OPS)), tnum_with_member(), tnum_with_member())
def test_tnum_binary_ops_sound(op, a, b):
    result = getattr(a[0], op)(b[0])
    assert result.contains(_TNUM_OPS[op](a[1], b[1]))


@given(interval_with_member(), small_shift)
def test_interval_shifts_sound(a, n):
    assert a[0].lsh(n).contains((a[1] << n) & U64)
    assert a[0].rsh(n).contains(a[1] >> n)


@given(tnum_with_member(), small_shift)
def test_tnum_shifts_sound(a, n):
    assert a[0].lsh(n).contains((a[1] << n) & U64)
    assert a[0].rsh(n).contains(a[1] >> n)


@given(scalar_with_member(), small_shift)
def test_scalar_const_shifts_sound(a, n):
    amount = ScalarVal.const(n)
    assert a[0].lsh(amount).contains((a[1] << n) & U64)
    assert a[0].rsh(amount).contains(a[1] >> n)


@given(scalar_with_member())
def test_scalar_trunc32_sound(a):
    assert a[0].trunc32().contains(a[1] & 0xFFFFFFFF)


# -- random straight-line programs vs concrete execution ----------------------


_PROGRAM_OPS = sorted(_TNUM_OPS) + ["lsh", "rsh"]


@st.composite
def straight_line_program(draw):
    length = draw(st.integers(min_value=1, max_value=8))
    ops = []
    for _ in range(length):
        op = draw(st.sampled_from(_PROGRAM_OPS))
        if op in ("lsh", "rsh"):
            ops.append((op, draw(st.integers(min_value=0, max_value=31))))
        else:
            ops.append((op, draw(st.integers(min_value=0, max_value=U64))))
    return ops


@settings(max_examples=200)
@given(straight_line_program(), st.integers(min_value=0, max_value=0xFFFF))
def test_random_program_abstract_covers_concrete(program, start):
    """Run the same op sequence concretely (u64 semantics, as the XDP VM
    computes) and abstractly from ``bounded(0xFFFF)``; the abstract
    result must contain the concrete one at every step."""
    concrete = start
    abstract = ScalarVal.bounded(0xFFFF)
    assert abstract.contains(concrete)
    for op, imm in program:
        operand = ScalarVal.const(imm)
        if op == "lsh":
            concrete = (concrete << imm) & U64
        elif op == "rsh":
            concrete = concrete >> imm
        else:
            concrete = _TNUM_OPS[op](concrete, imm)
        abstract = getattr(abstract, op)(operand)
        assert abstract.contains(concrete)


@settings(max_examples=200)
@given(
    straight_line_program(),
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=0xFFFF),
)
def test_random_program_join_of_two_runs_sound(program, start_a, start_b):
    """The join of the entry abstraction must cover both concrete runs —
    the CFG-join situation the verifier's dataflow relies on."""
    abstract = ScalarVal.bounded(0xFFFF)
    results = []
    for start in (start_a, start_b):
        concrete = start
        for op, imm in program:
            if op == "lsh":
                concrete = (concrete << imm) & U64
            elif op == "rsh":
                concrete = concrete >> imm
            else:
                concrete = _TNUM_OPS[op](concrete, imm)
        results.append(concrete)
    for op, imm in program:
        abstract = getattr(abstract, op)(ScalarVal.const(imm))
    joined = abstract.join(abstract)
    for concrete in results:
        assert joined.contains(concrete)
