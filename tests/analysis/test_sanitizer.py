"""Runtime ownership sanitizer (REPRO_SANITIZE)."""

import pytest

from repro.analysis import sanitizer
from repro.flextoe.state import PostprocState, PreprocState, ProtocolState


def _make_pre(flow_group=0):
    return PreprocState(b"\x02" * 6, "10.0.0.2", 1000, 2000, flow_group)


def _make_post():
    return PostprocState(opaque=1, context_id=0, rx_base=0, tx_base=0, rx_size=4096, tx_size=4096)


@pytest.fixture
def sanitized():
    sanitizer.install()
    try:
        yield
    finally:
        sanitizer.uninstall()


def _run_wrapped(factory, stage, flow_group=None):
    wrapped = sanitizer.guard_process(factory(), stage, flow_group)
    return next(wrapped)


def test_install_is_idempotent_and_uninstall_restores(sanitized):
    sanitizer.install()  # second install is a no-op
    assert sanitizer.enabled()
    state = ProtocolState()
    state.seq = 1  # no stage context: allowed
    sanitizer.uninstall()
    assert not sanitizer.enabled()
    assert ProtocolState.__setattr__ is object.__setattr__
    sanitizer.install()  # restore for the fixture's uninstall


def test_non_protocol_stage_write_raises(sanitized):
    state = ProtocolState()
    sanitizer.register(state, flow_group=0)

    def pre_stage():
        state.seq = 99
        yield "unreached"

    with pytest.raises(sanitizer.SanitizerError, match="only the atomic protocol stage"):
        _run_wrapped(pre_stage, "pre")


def test_cross_flow_group_write_raises(sanitized):
    state = ProtocolState()
    sanitizer.register(state, flow_group=2)

    def wrong_group():
        state.ack = 5
        yield "unreached"

    with pytest.raises(sanitizer.SanitizerError, match="cross-flow-group"):
        _run_wrapped(wrong_group, "proto", flow_group=1)


def test_owning_protocol_stage_write_allowed(sanitized):
    state = ProtocolState()
    sanitizer.register(state, flow_group=2)

    def owner():
        state.ack = 7
        yield "ok"

    assert _run_wrapped(owner, "proto", flow_group=2) == "ok"
    assert state.ack == 7


def test_unregistered_state_is_not_guarded(sanitized):
    state = ProtocolState()  # never registered: e.g. a scratch record

    def pre_stage():
        state.seq = 1
        yield "ok"

    assert _run_wrapped(pre_stage, "pre") == "ok"


def test_owner_cleared_while_suspended(sanitized):
    state = ProtocolState()
    sanitizer.register(state, flow_group=0)

    def proc():
        yield "suspend"

    wrapped = sanitizer.guard_process(proc(), "pre")
    next(wrapped)
    assert sanitizer.current_owner() is None
    state.seq = 3  # control-plane write between stage steps: allowed


def test_unregister_drops_the_guard(sanitized):
    state = ProtocolState()
    sanitizer.register(state, flow_group=0)
    sanitizer.unregister(state)

    def pre_stage():
        state.seq = 1
        yield "ok"

    assert _run_wrapped(pre_stage, "pre") == "ok"


def test_preproc_state_immutable_after_install(sanitized):
    pre = _make_pre()
    sanitizer.register(pre, flow_group=0)
    # Even without stage context: the identification partition is
    # install-time-only.
    with pytest.raises(sanitizer.SanitizerError, match="immutable"):
        pre.local_port = 1234

    def rogue_stage():
        pre.flow_group = 1
        yield "unreached"

    with pytest.raises(sanitizer.SanitizerError, match="immutable"):
        _run_wrapped(rogue_stage, "pre", flow_group=0)


def test_preproc_state_writable_before_install(sanitized):
    pre = _make_pre()
    pre.local_port = 1234  # construction / pre-install mutation
    assert pre.local_port == 1234


def test_postproc_state_rejects_non_post_stages(sanitized):
    post = _make_post()
    sanitizer.register(post, flow_group=0)

    def pre_stage():
        post.cnt_ackb = 10
        yield "unreached"

    with pytest.raises(sanitizer.SanitizerError, match="only the owning post stage"):
        _run_wrapped(pre_stage, "pre", flow_group=0)


def test_postproc_state_owning_post_stage_allowed(sanitized):
    post = _make_post()
    sanitizer.register(post, flow_group=2)

    def owner():
        post.cnt_ackb = 10
        yield "ok"

    assert _run_wrapped(owner, "post", flow_group=2) == "ok"
    assert post.cnt_ackb == 10


def test_postproc_state_cross_group_post_stage_raises(sanitized):
    post = _make_post()
    sanitizer.register(post, flow_group=2)

    def wrong_group():
        post.cnt_ackb = 10
        yield "unreached"

    with pytest.raises(sanitizer.SanitizerError, match="cross-flow-group"):
        _run_wrapped(wrong_group, "post", flow_group=1)


def test_postproc_state_run_to_completion_proto_token_allowed(sanitized):
    # Run-to-completion executes the post logic inline under the worker's
    # 'proto' token; that is the same serialized execution, not a race.
    post = _make_post()
    sanitizer.register(post, flow_group=0)

    def rtc_worker():
        post.cnt_ackb = 3
        yield "ok"

    assert _run_wrapped(rtc_worker, "proto", flow_group=0) == "ok"


def test_postproc_state_control_plane_poll_allowed(sanitized):
    post = _make_post()
    sanitizer.register(post, flow_group=0)
    post.cnt_ackb = 77  # no stage context: the cc-stats poll
    assert post.take_cc_stats() == (77, 0, 0, 0)
    post.fold_rtt_samples(100, 2)
    assert post.rtt_est == 50


def test_uninstall_restores_all_partition_classes(sanitized):
    sanitizer.uninstall()
    assert PreprocState.__setattr__ is object.__setattr__
    assert ProtocolState.__setattr__ is object.__setattr__
    assert PostprocState.__setattr__ is object.__setattr__
    sanitizer.install()  # restore for the fixture's uninstall


def _installed_record(index=0, flow_group=2):
    from repro.flextoe.state import ConnectionRecord

    record = ConnectionRecord(
        index, ("10.0.0.1", "10.0.0.2", 1000, 2000), b"\x01" * 6, "10.0.0.1"
    )
    sanitizer.register(record.pre, flow_group)
    sanitizer.register(record.proto, flow_group)
    sanitizer.register(record.post, flow_group)
    return record


def test_guard_survives_compact(sanitized):
    # compact() sheds the cached partition views; the views lazily
    # recreated on next access are *different objects* on the *same
    # slab slot* and must reattach to the registered ownership token.
    record = _installed_record(flow_group=2)
    before = record.proto
    record.compact()
    after = record.proto
    assert after is not before

    def rogue_stage():
        record.proto.seq = 99
        yield "unreached"

    with pytest.raises(sanitizer.SanitizerError, match="only the atomic protocol stage"):
        _run_wrapped(rogue_stage, "pre")
    with pytest.raises(sanitizer.SanitizerError, match="immutable"):
        record.pre.local_port = 4242

    def owner():
        record.proto.seq = 7
        yield "ok"

    assert _run_wrapped(owner, "proto", flow_group=2) == "ok"
    assert record.proto.seq == 7


def test_unregister_after_compact_drops_the_guard(sanitized):
    # Teardown unregisters through freshly recreated views (the cached
    # ones are gone); the slot keying makes that equivalent.
    record = _installed_record(index=1, flow_group=0)
    record.compact()
    sanitizer.unregister(record.pre)
    sanitizer.unregister(record.proto)
    sanitizer.unregister(record.post)

    def pre_stage():
        record.proto.seq = 1
        yield "ok"

    assert _run_wrapped(pre_stage, "pre") == "ok"


def test_sibling_partitions_share_the_slot_without_sharing_tokens(sanitized):
    # pre/proto/post are three views of ONE slab slot; registration is
    # per partition class, so guarding proto does not guard post.
    record = _installed_record(index=2, flow_group=1)
    sanitizer.unregister(record.post)
    record.compact()

    def pre_stage():
        record.post.cnt_ackb = 1  # unregistered partition: scratch
        yield "ok"

    assert _run_wrapped(pre_stage, "pre") == "ok"
    with pytest.raises(sanitizer.SanitizerError, match="immutable"):
        record.pre.flow_group = 3


def test_slot_recycling_does_not_inherit_stale_ownership(sanitized):
    # A record abandoned without explicit unregister (a dropped testbed)
    # frees its slab slot; the next connection recycling that slot must
    # start unguarded, not inherit the dead connection's registration.
    from repro.flextoe.state import ConnectionRecord

    record = _installed_record(index=3, flow_group=3)
    slot = record.slab_slot
    del record  # refcount drop frees the slot, no unregister call
    fresh = ConnectionRecord(
        4, ("10.0.0.1", "10.0.0.9", 1, 2), b"\x01" * 6, "10.0.0.1"
    )
    assert fresh.slab_slot == slot  # LIFO free list recycles
    fresh.pre.peer_mac = b"\x09" * 6  # would raise "immutable" if stale


def test_end_to_end_flextoe_run_is_clean(sanitized):
    # A real echo RPC exchange over the sanitized pipeline: every stage
    # process is wrapped, connection state is registered at offload, and
    # no ownership violation fires.
    from repro.apps import EchoServer
    from repro.apps.rpc import ClosedLoopClient
    from repro.harness import Testbed

    bed = Testbed(seed=7)
    server = bed.add_flextoe_host("server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    echo = EchoServer(server.new_context(), 7000, request_size=64)
    bed.sim.process(echo.run(), name="echo")
    rpc = ClosedLoopClient(client.new_context(), server.ip, 7000, 64, 64, warmup=1)
    proc = bed.sim.process(rpc.run(5), name="rpc")
    bed.sim.run(until=proc)
    assert rpc.histogram.count >= 4
