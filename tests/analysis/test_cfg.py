"""CFG construction over XDP VM programs."""

from repro.analysis.cfg import build_cfg, insn_successors
from repro.xdp import assemble
from repro.xdp.vm import Insn


def test_straight_line_is_one_block():
    program = assemble("mov r0, 1\nexit")
    cfg = build_cfg(program)
    assert len(cfg.blocks) == 1
    block = cfg.blocks[0]
    assert (block.start, block.end) == (0, 2)
    assert block.successors == []  # exit terminator


def test_branch_splits_blocks_and_wires_edges():
    source = """
        mov r0, 1
        jeq r0, 0, other
        mov r2, 7
        ja done
    other:
        mov r2, 9
    done:
        add r0, r2
        exit
    """
    program = assemble(source)
    cfg = build_cfg(program)
    # entry [0:2), then-arm [2:4), else-arm [4:5), join [5:7)
    starts = [(b.start, b.end) for b in cfg.blocks]
    assert starts == [(0, 2), (2, 4), (4, 5), (5, 7)]
    entry, then_arm, else_arm, join = cfg.blocks
    assert entry.successors == [then_arm.index, else_arm.index]
    assert then_arm.successors == [join.index]
    assert else_arm.successors == [join.index]
    assert join.successors == []
    assert cfg.block_at(3) is then_arm
    assert cfg.reachable_blocks() == {0, 1, 2, 3}
    assert cfg.unreachable_blocks() == []


def test_unreachable_block_detected():
    program = assemble("mov r0, 1\nja 1\nmov r0, 2\nexit")
    cfg = build_cfg(program)
    unreachable = cfg.unreachable_blocks()
    assert len(unreachable) == 1
    assert unreachable[0].start == 2  # the skipped mov


def test_insn_successors_shapes():
    program = [
        Insn("mov.imm", dst=0, imm=1),
        Insn("jeq.imm", dst=0, imm=0, off=1),
        Insn("ja", off=0),
        Insn("exit"),
    ]
    assert insn_successors(program, 0) == [1]
    assert insn_successors(program, 1) == [2, 3]  # fallthrough first
    assert insn_successors(program, 2) == [3]
    assert insn_successors(program, 3) == []


def test_out_of_range_target_becomes_none_edge():
    program = [Insn("jeq.imm", dst=0, imm=0, off=5), Insn("exit")]
    cfg = build_cfg(program)
    assert None in cfg.blocks[0].successors


def test_empty_program_builds_empty_cfg():
    cfg = build_cfg([])
    assert cfg.blocks == []
    assert cfg.reachable_blocks() == set()
