"""DMA engine and PCIe doorbell/MSI-X behavior."""

from repro.nfp import DmaEngine, PcieBlock
from repro.nfp.pcie import MMIO_WRITE_NS
from repro.sim import Simulator


def test_dma_completion_includes_latency_and_transfer():
    sim = Simulator()
    dma = DmaEngine(sim, latency_ns=700, bandwidth_bps=8_000_000_000)
    done_at = []

    def issuer(sim):
        done = dma.issue(0, 1000)  # 1000B at 1 GB/s = 1000 ns
        yield done
        done_at.append(sim.now)

    sim.process(issuer(sim))
    sim.run()
    assert done_at == [1700]
    assert dma.ops == 1
    assert dma.bytes_moved == 1000


def test_dma_bandwidth_is_shared():
    sim = Simulator()
    dma = DmaEngine(sim, latency_ns=0, bandwidth_bps=8_000_000_000)
    completions = []

    def issuer(sim):
        events = [dma.issue(i % 2, 1000) for i in range(4)]
        for event in events:
            yield event
        completions.append(sim.now)

    sim.process(issuer(sim))
    sim.run()
    # 4 x 1000B at 1 GB/s on a shared bus: total 4 us.
    assert completions == [4000]


def test_dma_queue_depth_limits_concurrency():
    sim = Simulator()
    dma = DmaEngine(sim, n_queues=1, queue_depth=2, latency_ns=1000, bandwidth_bps=10**15)
    done_at = {}

    def issuer(sim, i):
        yield dma.issue(0, 0)
        done_at[i] = sim.now

    for i in range(4):
        sim.process(issuer(sim, i))
    sim.run()
    # Two at a time: first pair at ~1000, second pair at ~2000.
    assert done_at[0] == 1000 and done_at[1] == 1000
    assert done_at[2] == 2000 and done_at[3] == 2000


def test_doorbell_wakes_waiter_after_mmio_delay():
    sim = Simulator()
    pcie = PcieBlock(sim)
    woke = []

    def nic_side(sim):
        yield pcie.wait_doorbell("ctx0")
        woke.append(sim.now)

    sim.process(nic_side(sim))
    pcie.ring("ctx0")
    sim.run()
    assert woke == [MMIO_WRITE_NS]


def test_doorbell_pending_ring_consumed_immediately():
    sim = Simulator()
    pcie = PcieBlock(sim)
    woke = []
    pcie.ring("ctx0")

    def nic_side(sim):
        yield sim.timeout(10_000)
        yield pcie.wait_doorbell("ctx0")
        woke.append(sim.now)

    sim.process(nic_side(sim))
    sim.run()
    assert woke == [10_000]


def test_each_ring_wakes_one_waiter():
    sim = Simulator()
    pcie = PcieBlock(sim)
    woke = []

    def nic_side(sim, name):
        yield pcie.wait_doorbell("ctx0")
        woke.append(name)

    sim.process(nic_side(sim, "a"))
    sim.process(nic_side(sim, "b"))
    pcie.ring("ctx0")
    sim.run()
    assert woke == ["a"]
    pcie.ring("ctx0")
    sim.run()
    assert sorted(woke) == ["a", "b"]


def test_msix_dispatch():
    sim = Simulator()
    pcie = PcieBlock(sim)
    fired = []
    pcie.register_msix(3, lambda vector: fired.append((vector, sim.now)))
    pcie.raise_msix(3)
    pcie.raise_msix(9)  # unregistered: counted, no crash
    sim.run()
    assert fired == [(3, MMIO_WRITE_NS)]
    assert pcie.msix_raised == 2
