"""FPC issue-slot semantics: single-issue compute, latency hiding."""

import pytest

from repro.nfp import Fpc
from repro.nfp.memory import MemoryLevel
from repro.sim import Simulator


def test_compute_charges_cycles():
    sim = Simulator()
    fpc = Fpc(sim, "fpc0")
    done = []

    def program(thread):
        yield from thread.compute(800)  # 800 cycles @ 800 MHz = 1 us
        done.append(sim.now)

    fpc.spawn(program)
    sim.run()
    assert done == [1000]
    assert fpc.busy_cycles == 800


def test_two_threads_serialize_compute():
    sim = Simulator()
    fpc = Fpc(sim, "fpc0")
    finished = []

    def program(thread):
        yield from thread.compute(800)
        finished.append(sim.now)

    fpc.spawn(program)
    fpc.spawn(program)
    sim.run()
    # Pure compute cannot be overlapped on one core.
    assert finished == [1000, 2000]


def test_memory_wait_releases_issue_slot():
    sim = Simulator()
    fpc = Fpc(sim, "fpc0")
    slow_mem = MemoryLevel("M", 1024, latency_cycles=800)  # 1 us latency
    finished = []

    def program(thread):
        yield from thread.mem_read(slow_mem, issue_cycles=0)
        yield from thread.compute(80)
        finished.append(sim.now)

    fpc.spawn(program)
    fpc.spawn(program)
    sim.run()
    # Both threads overlap their 1 us memory waits; computes serialize after.
    assert finished[0] == 1100
    assert finished[1] <= 1200


def test_eight_threads_hide_latency_better_than_one():
    def run(n_threads, n_items=16):
        sim = Simulator()
        fpc = Fpc(sim, "fpc0")
        mem = MemoryLevel("M", 1024, latency_cycles=400)
        remaining = {"count": n_items}
        finish = {"t": None}

        def worker(thread):
            while remaining["count"] > 0:
                remaining["count"] -= 1
                yield from thread.compute(100)
                yield from thread.mem_read(mem)
            finish["t"] = sim.now

        for _ in range(n_threads):
            fpc.spawn(worker)
        sim.run()
        return finish["t"]

    single = run(1)
    eight = run(8)
    assert eight < single / 2  # threading hides most of the memory wait


def test_thread_limit_enforced():
    sim = Simulator()
    fpc = Fpc(sim, "fpc0", n_threads=2)

    def idle(thread):
        yield thread.sim.timeout(1)

    fpc.spawn(idle)
    fpc.spawn(idle)
    with pytest.raises(RuntimeError):
        fpc.spawn(idle)


def test_code_store_accounting():
    sim = Simulator()
    fpc = Fpc(sim, "fpc0")
    fpc.load_code(30 * 1024)
    with pytest.raises(MemoryError):
        fpc.load_code(4 * 1024)


def test_utilization():
    sim = Simulator()
    fpc = Fpc(sim, "fpc0")

    def program(thread):
        yield from thread.compute(400)
        yield thread.sim.timeout(1_000)

    fpc.spawn(program)
    sim.run()
    elapsed = sim.now
    util = fpc.utilization(elapsed)
    assert 0.0 < util < 1.0


def test_io_wait_returns_event_value():
    sim = Simulator()
    fpc = Fpc(sim, "fpc0")
    out = []

    def program(thread):
        value = yield from thread.io_wait(sim.timeout(500, value="dma-done"))
        out.append((sim.now, value))

    fpc.spawn(program)
    sim.run()
    assert out[0][1] == "dma-done"
    assert out[0][0] >= 500
