"""CAM, hash lookup engine, rings, work queues, ticket lock, memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nfp import Cam, ClsRing, HashLookupEngine, WorkQueue
from repro.nfp.memory import MEM_CLS, MEM_EMEM, MemoryLevel
from repro.nfp.queues import TicketLock
from repro.sim import Simulator


def test_cam_lru_eviction_order():
    cam = Cam(capacity=2)
    cam.insert("a", 1)
    cam.insert("b", 2)
    cam.lookup("a")  # refresh a
    evicted = cam.insert("c", 3)
    assert evicted == ("b", 2)
    assert "a" in cam and "c" in cam


def test_cam_hit_miss_stats():
    cam = Cam(capacity=4)
    cam.insert("x", 1)
    hit, value = cam.lookup("x")
    assert hit and value == 1
    hit, value = cam.lookup("y")
    assert not hit and value is None
    assert cam.hits == 1 and cam.misses == 1
    assert cam.hit_rate == 0.5


def test_cam_update_existing_key_no_eviction():
    cam = Cam(capacity=2)
    cam.insert("a", 1)
    cam.insert("b", 2)
    assert cam.insert("a", 10) is None
    assert cam.lookup("a") == (True, 10)


def test_cam_invalidate():
    cam = Cam(capacity=2)
    cam.insert("a", 1)
    assert cam.invalidate("a") == 1
    assert cam.invalidate("a") is None
    assert len(cam) == 0


def test_cam_invalid_capacity():
    with pytest.raises(ValueError):
        Cam(capacity=0)


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
def test_cam_never_exceeds_capacity(keys):
    cam = Cam(capacity=16)
    for key in keys:
        cam.insert(key, key * 2)
        assert len(cam) <= 16
    # Most-recently inserted key is always present.
    assert keys[-1] in cam


def test_lookup_engine_roundtrip():
    engine = HashLookupEngine()
    tuples = [(0x0A000001, 0x0A000002, 1000 + i, 2000 + i) for i in range(100)]
    for i, four in enumerate(tuples):
        engine.insert(four, i)
    for i, four in enumerate(tuples):
        found, index, probes = engine.lookup(four)
        assert found and index == i
        assert probes >= 1
    assert engine.entries == 100


def test_lookup_engine_miss_and_remove():
    engine = HashLookupEngine()
    four = (1, 2, 3, 4)
    found, _, _ = engine.lookup(four)
    assert not found
    engine.insert(four, 7)
    assert engine.remove(four)
    assert not engine.remove(four)
    found, _, _ = engine.lookup(four)
    assert not found


def test_lookup_engine_update_in_place():
    engine = HashLookupEngine()
    four = (1, 2, 3, 4)
    engine.insert(four, 1)
    engine.insert(four, 2)
    assert engine.entries == 1
    assert engine.lookup(four)[1] == 2


def test_cls_ring_fifo():
    sim = Simulator()
    ring = ClsRing(sim, capacity=4)
    got = []

    def producer(sim):
        for i in range(8):
            yield ring.put(i)

    def consumer(sim):
        for _ in range(8):
            item = yield ring.get()
            got.append(item)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == list(range(8))
    assert ring.max_occupancy <= 4


def test_work_queue_multiple_consumers_drain_everything():
    sim = Simulator()
    queue = WorkQueue(sim, backing="emem")
    drained = []

    def consumer(sim, name):
        while True:
            item = yield queue.get()
            if item is None:
                return
            drained.append((name, item))

    def producer(sim):
        for i in range(20):
            yield queue.put(i)
        yield queue.put(None)
        yield queue.put(None)

    sim.process(consumer(sim, "c0"))
    sim.process(consumer(sim, "c1"))
    sim.process(producer(sim))
    sim.run()
    items = sorted(item for _, item in drained)
    assert items == list(range(20))
    # Work stealing: both consumers got something.
    names = {name for name, _ in drained}
    assert names == {"c0", "c1"}


def test_work_queue_backing_latency():
    sim = Simulator()
    assert WorkQueue(sim, backing="imem").access_latency == 250
    assert WorkQueue(sim, backing="emem").access_latency == 500


def test_ticket_lock_fairness():
    sim = Simulator()
    lock = TicketLock(sim)
    order = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        yield lock.acquire()
        order.append(name)
        yield sim.timeout(100)
        lock.release()

    sim.process(worker(sim, "a", 0))
    sim.process(worker(sim, "b", 10))
    sim.process(worker(sim, "c", 20))
    sim.run()
    assert order == ["a", "b", "c"]


def test_memory_alloc_free():
    mem = MemoryLevel("M", 100, 10)
    offset = mem.alloc(60)
    assert offset == 0
    assert mem.free_bytes == 40
    with pytest.raises(MemoryError):
        mem.alloc(41)
    mem.free(60)
    assert mem.free_bytes == 100
    with pytest.raises(RuntimeError):
        mem.free(1)


def test_memory_level_factories():
    assert MEM_CLS(0).size == 64 * 1024
    assert MEM_EMEM().size == 2 * 1024 * 1024 * 1024
    assert MEM_CLS(1).latency_cycles == 100


def test_chip_assembly():
    from repro.nfp import Nfp4000, NfpConfig
    from repro.sim import Simulator

    sim = Simulator()
    chip = Nfp4000(sim)
    assert chip.total_fpcs() == 60
    assert chip.free_fpcs() == 60
    island = chip.islands[0]
    fpc = island.claim_fpc()
    assert chip.free_fpcs() == 59
    assert fpc.clock.hz == 800_000_000
    lx = Nfp4000(Simulator(), NfpConfig.agilio_lx())
    assert lx.total_fpcs() == 120
    assert lx.islands[0].fpcs[0].clock.hz == 1_200_000_000


def test_island_exhaustion():
    from repro.nfp import Island

    sim = Simulator()
    island = Island(sim, 0, n_fpcs=2)
    island.claim_fpc()
    island.claim_fpc()
    with pytest.raises(RuntimeError):
        island.claim_fpc()
