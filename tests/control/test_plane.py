"""Control-plane behavior: ARP, handshake robustness, RTO, policy."""

import pytest

from repro.control import PolicyConfig
from repro.harness import Testbed
from repro.libtoe.errors import ConnectRefusedError
from repro.net import LossInjector


def build(seed=9, server_kwargs=None, loss=None):
    bed = Testbed(seed=seed)
    if loss is not None:
        bed.switch.loss = LossInjector(bed.rng.stream("loss"), probability=loss, protect_control=False)
    server = bed.add_flextoe_host("server", cp_kwargs=server_kwargs)
    client = bed.add_flextoe_host("client")
    return bed, server, client


def run_echo_once(bed, server, client, port=7000):
    results = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(port)
        sock = yield from server_ctx.accept(listener)
        data = yield from server_ctx.recv(sock, 1024)
        yield from server_ctx.send(sock, data)

    def client_app():
        sock = yield from client_ctx.connect(server.ip, port)
        yield from client_ctx.send(sock, b"ping")
        results["reply"] = yield from client_ctx.recv(sock, 1024)

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=200_000_000)
    return results


def test_dynamic_arp_resolution():
    # No seed_all_arp: the client must ARP for the server's MAC.
    bed, server, client = build()
    results = run_echo_once(bed, server, client)
    assert results.get("reply") == b"ping"
    assert server.ip in client.control_plane.arp_table


def test_connect_to_closed_port_is_refused():
    bed, server, client = build()
    bed.seed_all_arp()
    outcome = {}

    def client_app():
        ctx = client.new_context()
        try:
            yield from ctx.connect(server.ip, 9999)
        except ConnectRefusedError:
            outcome["refused"] = True

    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=100_000_000)
    assert outcome.get("refused")


def test_handshake_survives_syn_loss():
    # 30% loss without control-segment protection: SYN retransmission
    # must still establish the connection.
    bed, server, client = build(loss=0.3)
    bed.seed_all_arp()
    results = run_echo_once(bed, server, client)
    assert results.get("reply") == b"ping"
    assert (
        client.control_plane.syn_retransmits + server.control_plane.syn_retransmits >= 0
    )


def test_rto_retransmission_recovers_lost_data():
    bed, server, client = build()
    bed.seed_all_arp()
    # Establish cleanly, then turn on heavy loss for the data phase.
    results = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        got = b""
        while len(got) < 4000:
            chunk = yield from server_ctx.recv(sock, 8192)
            if not chunk:
                break
            got += chunk
        results["got"] = got

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        bed.switch.loss = LossInjector(bed.rng.stream("late-loss"), probability=0.25)
        yield from client_ctx.send(sock, b"z" * 4000)

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=400_000_000)
    assert results.get("got") == b"z" * 4000


def test_connection_limit_policy():
    policy = PolicyConfig(max_connections_per_app=2)
    bed, server, client = build(server_kwargs={"policy": policy})
    bed.seed_all_arp()
    outcome = {"ok": 0, "refused": 0}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        while True:
            yield from server_ctx.accept(listener)

    def client_app():
        for _ in range(4):
            try:
                yield from client_ctx.connect(server.ip, 7000)
                outcome["ok"] += 1
            except ConnectRefusedError:
                outcome["refused"] += 1

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=300_000_000)
    assert outcome["ok"] == 2
    assert outcome["refused"] == 2


def test_port_partitioning():
    policy = PolicyConfig(port_ranges={"appA": (7000, 7099)})
    assert policy.port_allowed("appA", 7050)
    assert not policy.port_allowed("appB", 7050)
    assert policy.port_allowed("appB", 8000)


def test_cc_loop_programs_scheduler_rates():
    bed, server, client = build()
    bed.seed_all_arp()
    run_echo_once(bed, server, client)
    # The established connection got a scheduler entry at setup and the
    # CC loop then raised its rate (slow start, no congestion): the
    # programmed pacing interval shrinks below the initial one.
    from repro.control.cc import Dctcp
    from repro.flextoe.scheduler import rate_to_interval_q8

    sched = server.nic.scheduler
    entries = sched._flows
    assert entries  # at least the server-side connection
    initial = rate_to_interval_q8(Dctcp().init_rate_bps // 8)
    for entry in entries.values():
        assert entry.interval_q8 < initial


def test_teardown_removes_connection_state():
    bed, server, client = build()
    bed.seed_all_arp()
    server_ctx = server.new_context()
    client_ctx = client.new_context()
    done = {}

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        while (yield from server_ctx.recv(sock, 1024)) != b"":
            pass
        yield from server_ctx.close(sock)

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        yield from client_ctx.send(sock, b"bye")
        yield from client_ctx.close(sock)
        done["closed"] = True

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=100_000_000)
    assert done.get("closed")
    # After the linger, both directories are empty.
    assert len(client.control_plane.directory) == 0
    assert len(client.nic.datapath.conn_table) == 0
