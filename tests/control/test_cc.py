"""Congestion-control algorithms: DCTCP and TIMELY dynamics."""

from repro.control.cc import Dctcp, Timely
from repro.control.cc.base import CcStats


def stats(acked=100_000, ecn=0, fretx=0, rtt=50):
    return CcStats(acked, ecn, fretx, rtt)


def test_dctcp_slow_start_doubles():
    algo = Dctcp(init_rate_bps=1_000_000_000)
    flow = algo.new_flow()
    rate = algo.update(flow, stats())
    assert rate == 2_000_000_000


def test_dctcp_additive_increase_after_congestion():
    algo = Dctcp(init_rate_bps=1_000_000_000, additive_bps=50_000_000)
    flow = algo.new_flow()
    flow.rate_bps = algo.update(flow, stats(ecn=50_000))  # leaves slow start
    rate_after = algo.update(flow, stats())
    assert rate_after == flow.rate_bps + 50_000_000


def test_dctcp_ecn_fraction_reduces_rate():
    algo = Dctcp(init_rate_bps=10_000_000_000)
    flow = algo.new_flow()
    before = flow.rate_bps
    after = algo.update(flow, stats(acked=100_000, ecn=100_000))
    assert after < before
    assert flow.algo_state.alpha > 0


def test_dctcp_alpha_ewma_converges():
    algo = Dctcp(g=1 / 4)
    flow = algo.new_flow()
    for _ in range(30):
        flow.rate_bps = algo.update(flow, stats(acked=1000, ecn=1000))
    assert flow.algo_state.alpha > 0.98


def test_dctcp_loss_halves():
    algo = Dctcp(init_rate_bps=8_000_000_000)
    flow = algo.new_flow()
    after = algo.update(flow, stats(fretx=2))
    assert after == 4_000_000_000


def test_dctcp_respects_bounds():
    algo = Dctcp(init_rate_bps=2_000_000, min_rate_bps=1_000_000, max_rate_bps=10_000_000)
    flow = algo.new_flow()
    for _ in range(20):
        flow.rate_bps = algo.update(flow, stats(fretx=1))
    assert flow.rate_bps == 1_000_000
    flow2 = algo.new_flow()
    for _ in range(20):
        flow2.rate_bps = algo.update(flow2, stats())
    assert flow2.rate_bps == 10_000_000


def test_timely_additive_when_rtt_low():
    algo = Timely(t_low_us=50, init_rate_bps=1_000_000_000, additive_bps=40_000_000)
    flow = algo.new_flow()
    algo.update(flow, stats(rtt=20))  # first sample primes prev_rtt
    after = algo.update(flow, stats(rtt=20))
    assert after == 1_040_000_000


def test_timely_multiplicative_when_rtt_high():
    algo = Timely(t_high_us=500, init_rate_bps=10_000_000_000)
    flow = algo.new_flow()
    algo.update(flow, stats(rtt=400))
    after = algo.update(flow, stats(rtt=2_000))
    assert after < 10_000_000_000


def test_timely_gradient_response():
    algo = Timely(init_rate_bps=5_000_000_000)
    flow = algo.new_flow()
    algo.update(flow, stats(rtt=100))
    # Rising RTT within [t_low, t_high] -> positive gradient -> decrease.
    falling = algo.update(flow, stats(rtt=220))
    assert falling < 5_000_000_000


def test_timely_no_rtt_no_change():
    algo = Timely(init_rate_bps=3_000_000_000)
    flow = algo.new_flow()
    assert algo.update(flow, stats(rtt=0)) == 3_000_000_000


def test_scheduler_rate_bypass_for_uncongested():
    algo = Dctcp(init_rate_bps=40_000_000_000)
    flow = algo.new_flow()
    assert algo.scheduler_rate(flow) == 0  # bypass the rate limiter
    flow.rate_bps = 1_000_000_000
    assert algo.scheduler_rate(flow) == 1_000_000_000 // 8
