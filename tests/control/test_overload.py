"""Overload-safe control plane: backlog bound, embryonic limit with
SYN-cookie fallback, the half-open reaper, and the RFC 5961
challenge-ACK rate limit under an RST storm."""

import pytest

from repro.apps.attackgen import Attacker
from repro.control.plane import ControlPlaneConfig
from repro.harness import Testbed


def build(seed=11, cp_kwargs=None):
    bed = Testbed(seed=seed)
    server = bed.add_flextoe_host("server", cp_kwargs=cp_kwargs)
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    return bed, server, client


def attacker_from_testbed(bed, server, seed=5):
    """An Attacker wired to a fresh raw switch station."""
    from repro.proto import str_to_ip, str_to_mac

    station = bed.topology.attach(
        "attacker", mac=str_to_mac("02:00:00:00:00:99"), ip=str_to_ip("10.0.200.9")
    )
    return Attacker(bed.sim, station, server.ip, server.mac, 7000, seed=seed)


def test_backlog_bounds_syn_admission():
    # backlog=2 and no acceptor: the third and later SYNs must be
    # dropped with the counter incremented, not queued.
    bed, server, client = build()
    ctx = server.new_context()
    listener = ctx.listen(7000, backlog=2)

    clients = [bed.add_flextoe_host("c%d" % i) for i in range(4)]
    bed.seed_all_arp()
    outcomes = []

    def connector(host):
        cctx = host.new_context()
        try:
            yield from cctx.connect(server.ip, 7000)
            outcomes.append("ok")
        except Exception:
            outcomes.append("refused")

    for host in clients:
        bed.sim.process(connector(host), name="conn")
    bed.sim.run(until=5_000_000)
    assert server.control_plane.syn_dropped > 0
    assert listener.syn_dropped == server.control_plane.syn_dropped
    # The accept queue itself never grew past the bound.
    assert len(listener.ready) <= 2


def test_embryonic_limit_triggers_syn_cookies():
    # Defense on with a tiny embryonic budget: floods of bare SYNs must
    # stop allocating pending state and switch to stateless cookies.
    bed, server, _ = build(
        cp_kwargs={
            "config": ControlPlaneConfig(
                syn_defense_enabled=True,
                embryonic_limit=4,
                half_open_timeout_ns=50_000_000,
            )
        }
    )
    ctx = server.new_context()
    ctx.listen(7000, backlog=256)
    attacker = attacker_from_testbed(bed, server)
    bed.sim.process(attacker.syn_flood(32, 1_000, src_pool=32), name="flood")
    bed.sim.run(until=10_000_000)
    plane = server.control_plane
    assert plane.embryonic <= 4
    assert plane.cookies_sent > 0
    # No data-path state was allocated for cookie'd SYNs.
    assert len(plane.directory) == 0


def test_cookie_completion_establishes():
    # A benign client arriving while the embryonic budget is exhausted
    # gets a cookie SYN-ACK, and its handshake ACK must validate the
    # cookie and establish end to end.
    bed, server, client = build(
        cp_kwargs={
            "config": ControlPlaneConfig(
                syn_defense_enabled=True,
                embryonic_limit=1,
                half_open_timeout_ns=50_000_000,
            )
        }
    )
    sctx = server.new_context()
    listener = sctx.listen(7000, backlog=64)
    attacker = attacker_from_testbed(bed, server)
    # Two embryonic holders occupy the budget first.
    bed.sim.process(attacker.syn_flood(4, 500, src_pool=4), name="flood")
    results = {}

    def server_app():
        sock = yield from sctx.accept(listener)
        data = yield from sctx.recv(sock, 1024)
        yield from sctx.send(sock, data)

    def client_app():
        yield bed.sim.timeout(100_000)  # let the flood spend the budget
        cctx = client.new_context()
        sock = yield from cctx.connect(server.ip, 7000)
        yield from cctx.send(sock, b"ping")
        results["reply"] = yield from cctx.recv(sock, 1024)

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=50_000_000)
    plane = server.control_plane
    assert plane.cookies_sent > 0
    assert plane.cookies_validated > 0
    assert results.get("reply") == b"ping"


def test_half_open_reaper_frees_embryonic_slots():
    bed, server, _ = build(
        cp_kwargs={
            "config": ControlPlaneConfig(
                syn_defense_enabled=True,
                embryonic_limit=64,
                half_open_timeout_ns=200_000,
            )
        }
    )
    ctx = server.new_context()
    ctx.listen(7000, backlog=256)
    attacker = attacker_from_testbed(bed, server)
    bed.sim.process(attacker.syn_flood(16, 1_000, src_pool=16), name="flood")
    bed.sim.run(until=20_000_000)
    plane = server.control_plane
    assert plane.embryonic_reaped >= 16
    assert plane.embryonic == 0
    assert len(plane.pending) == 0


def test_rst_storm_challenge_acks_are_rate_limited():
    # Blind in-window-ish RSTs against an established flow draw
    # challenge ACKs (RFC 5961 §3.2) — but at most challenge_ack_limit
    # per interval, pinned by the challenge_acks counter.
    bed, server, client = build(
        cp_kwargs={
            "config": ControlPlaneConfig(
                challenge_ack_limit=3,
                challenge_ack_interval_ns=100_000_000,
            )
        }
    )
    sctx = server.new_context()
    listener = sctx.listen(7000)
    held = {}

    def server_app():
        sock = yield from sctx.accept(listener)
        held["sock"] = sock
        data = yield from sctx.recv(sock, 1024)
        yield from sctx.send(sock, data)

    cctx = client.new_context()

    def client_app():
        sock = yield from cctx.connect(server.ip, 7000)
        yield from cctx.send(sock, b"ping")
        yield from cctx.recv(sock, 1024)
        held["client_port"] = sock.four_tuple[2]

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=5_000_000)
    assert "client_port" in held

    attacker = attacker_from_testbed(bed, server)
    victims = [(server.ip, client.ip, 7000, held["client_port"])]
    # Aim the spray just past the victim's rcv_nxt: in-window but never
    # the exact match, the case RFC 5961 answers with a challenge ACK.
    entry = next(iter(server.control_plane.directory))
    bed.sim.process(
        attacker.rst_storm(
            victims, 40, 1_000, mode="rst", seq_base=entry.record.proto.ack
        ),
        name="storm",
    )
    bed.sim.run(until=bed.sim.now + 5_000_000)
    plane = server.control_plane
    # The storm drew challenges, but never more than the per-window cap
    # (the whole storm fits inside one rate-limit window).
    assert 0 < plane.challenge_acks <= 3
    assert plane.challenge_acks_limited > 0
    # The victim flow survived: blind RSTs did not tear it down.
    assert len(plane.directory) > 0


def test_counters_in_snapshot():
    from repro.faults.invariants import counters_snapshot

    bed, server, _ = build(
        cp_kwargs={
            "config": ControlPlaneConfig(
                syn_defense_enabled=True,
                embryonic_limit=2,
                half_open_timeout_ns=200_000,
            )
        }
    )
    ctx = server.new_context()
    ctx.listen(7000, backlog=4)
    attacker = attacker_from_testbed(bed, server)
    bed.sim.process(attacker.syn_flood(24, 500, src_pool=24), name="flood")
    bed.sim.run(until=20_000_000)
    snap = counters_snapshot(bed)["server"]
    for key in (
        "syn_dropped",
        "cookies_sent",
        "cookies_validated",
        "embryonic_reaped",
        "challenge_acks",
    ):
        assert key in snap, key
    assert snap["cookies_sent"] == server.control_plane.cookies_sent
    assert snap["embryonic_reaped"] == server.control_plane.embryonic_reaped
