"""Failure-path control-plane behavior: RTO backoff/abort, RST teardown,
typed handshake timeouts (ISSUE 4 satellites)."""

import pytest

from repro.control import ControlPlaneConfig
from repro.harness import Testbed
from repro.libtoe.errors import (
    ConnectRefusedError,
    ConnectionTimeoutError,
    HandshakeTimeoutError,
    PeerResetError,
)
from repro.proto import FLAG_RST, make_tcp_frame


def build(seed=9, server_kwargs=None, client_kwargs=None):
    bed = Testbed(seed=seed)
    server = bed.add_flextoe_host("server", cp_kwargs=server_kwargs)
    client = bed.add_flextoe_host("client", cp_kwargs=client_kwargs)
    bed.seed_all_arp()
    return bed, server, client


def establish_and_ping(bed, server, client, port=7000):
    """Establish one connection and complete a clean ping-pong, so the
    failure under test starts from steady state."""
    state = {"server_sock": None, "client_sock": None, "ready": False}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(port)
        sock = yield from server_ctx.accept(listener)
        state["server_sock"] = (server_ctx, sock)
        data = yield from server_ctx.recv(sock, 1024)
        yield from server_ctx.send(sock, data)

    def client_app():
        sock = yield from client_ctx.connect(server.ip, port)
        state["client_sock"] = (client_ctx, sock)
        yield from client_ctx.send(sock, b"ping")
        reply = yield from client_ctx.recv(sock, 1024)
        state["ready"] = reply == b"ping"

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=5_000_000)
    assert state["ready"]
    return state


def test_data_rto_backoff_aborts_with_typed_error():
    """A black-holed connection retries with exponential backoff, then
    aborts: RST to the peer, state removed, ConnectionTimeoutError to
    the app."""
    max_retries = 4
    bed, server, client = build(
        client_kwargs={"config": ControlPlaneConfig(max_data_retries=max_retries)}
    )
    state = establish_and_ping(bed, server, client)
    ctx, sock = state["client_sock"]
    outcome = {}

    # Take the link down: every retransmission disappears.
    client.station.port.link.set_up(False)

    def doomed_sender():
        yield from ctx.send(sock, b"x" * 4000)
        try:
            yield from ctx.recv(sock, 1024)
        except ConnectionTimeoutError:
            outcome["error"] = "timeout"

    bed.sim.process(doomed_sender(), name="doomed")
    bed.sim.run(until=400_000_000)

    plane = client.control_plane
    assert outcome.get("error") == "timeout"
    assert plane.aborts == 1
    assert plane.retransmits_posted == max_retries
    assert len(plane.directory) == 0
    assert sock.error is not None


def test_backoff_doubles_between_attempts():
    """Retransmission intervals grow geometrically up to rto_max_ns."""
    config = ControlPlaneConfig(max_data_retries=4, rto_max_ns=100_000_000)
    bed, server, client = build(client_kwargs={"config": config})
    state = establish_and_ping(bed, server, client)
    ctx, sock = state["client_sock"]
    client.station.port.link.set_up(False)

    entry = next(iter(client.control_plane.directory))
    multipliers = []
    original_post = client.nic.post_hc

    def spy_post(context_id, descriptor):
        if descriptor.kind == "retransmit":
            multipliers.append(entry.rto_multiplier)
        return original_post(context_id, descriptor)

    client.nic.post_hc = spy_post

    def doomed_sender():
        yield from ctx.send(sock, b"x" * 4000)
        try:
            yield from ctx.recv(sock, 1024)
        except ConnectionTimeoutError:
            pass

    bed.sim.process(doomed_sender(), name="doomed")
    bed.sim.run(until=400_000_000)
    assert multipliers == [2, 4, 8, 16]


def test_backoff_resets_after_progress():
    """Loss-driven RTOs must not leave a lingering multiplier once the
    stream resumes."""
    from repro.net import LossInjector

    bed, server, client = build()
    results = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        got = b""
        while len(got) < 4000:
            chunk = yield from server_ctx.recv(sock, 8192)
            if not chunk:
                break
            got += chunk
        results["got"] = got

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        bed.switch.loss = LossInjector(bed.rng.stream("late-loss"), probability=0.25)
        yield from client_ctx.send(sock, b"z" * 4000)

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=400_000_000)
    assert results.get("got") == b"z" * 4000
    for entry in client.control_plane.directory:
        assert entry.rto_multiplier == 1
        assert entry.retry_attempts == 0


def make_peer_rst(server, client, four_tuple, seq):
    """An RST as the server's stack would send it toward the client."""
    local_ip, remote_ip, local_port, remote_port = four_tuple
    return make_tcp_frame(
        server.mac,
        client.mac,
        remote_ip,
        local_ip,
        remote_port,
        local_port,
        seq=seq,
        flags=FLAG_RST,
    )


def test_established_rst_tears_down_connection():
    bed, server, client = build()
    state = establish_and_ping(bed, server, client)
    ctx, sock = state["client_sock"]
    plane = client.control_plane
    entry = next(iter(plane.directory))
    outcome = {}

    def victim():
        try:
            yield from ctx.recv(sock, 1024)
        except PeerResetError:
            outcome["error"] = "reset"

    def injector():
        yield bed.sim.timeout(1_000_000)
        rst = make_peer_rst(server, client, entry.record.four_tuple, entry.record.proto.ack)
        plane.handle_frame(rst)

    bed.sim.process(victim(), name="victim")
    bed.sim.process(injector(), name="injector")
    bed.sim.run(until=50_000_000)

    assert outcome.get("error") == "reset"
    assert plane.resets_received == 1
    assert len(plane.directory) == 0
    assert plane.directory.lookup(entry.record.four_tuple) is None


def test_out_of_window_rst_is_ignored():
    """Blind-RST hardening: a reset whose sequence falls outside the
    receive window must not kill the connection."""
    bed, server, client = build()
    state = establish_and_ping(bed, server, client)
    plane = client.control_plane
    entry = next(iter(plane.directory))
    proto = entry.record.proto
    bad_seq = (proto.ack + proto.rx_avail + 5_000) & 0xFFFFFFFF
    rst = make_peer_rst(server, client, entry.record.four_tuple, bad_seq)
    plane.handle_frame(rst)
    bed.sim.run(until=bed.sim.now + 1_000_000)
    assert plane.resets_received == 0
    assert len(plane.directory) == 1


def test_recovery_at_scale_reoffloads_every_shadow():
    """NIC crash/reboot with 10k slab-backed quiescent connections: the
    shadow slab survives the crash intact, and the watchdog-driven
    recovery re-offloads every shadow — directory-tracked actives and
    adopt-installed bulk connections alike — with correct state."""
    import gc

    from repro.control.recovery import SHADOW_SLAB

    n_bulk = 10_000
    bed, server, client = build(
        server_kwargs={"config": ControlPlaneConfig(snapshot_interval_ns=0)}
    )
    establish_and_ping(bed, server, client)

    recovery = server.control_plane.enable_recovery()
    server.nic.register_context(500, capacity=4)
    region = server.machine.memory.alloc(4096)
    gc.collect()
    shadow_live_before = SHADOW_SLAB.stats()["live"]
    adopted = {}
    for i in range(n_bulk):
        four = (server.ip, (11 << 24) + i, 9, 40000)
        index, record = recovery.adopt_offloaded(
            four_tuple=four,
            peer_mac=0x020000000099,
            local_mac=server.mac,
            iss=1000 + i,
            irs=2000 + i,
            context_id=500,
            opaque=None,
            rx_buffer=(region, 0, 2048),
            tx_buffer=(region, 2048, 2048),
        )
        assert record.four_tuple == four
        adopted[index] = four
    gc.collect()
    assert SHADOW_SLAB.stats()["live"] - shadow_live_before == n_bulk
    assert len(recovery.shadows) == n_bulk + 1  # bulk + the active pair

    sample = sorted(adopted)[:: n_bulk // 4][:4]
    expected = {
        index: (
            recovery.shadows[index].four_tuple,
            recovery.shadows[index].snd_iss,
            recovery.shadows[index].rcv_irs,
            recovery.shadows[index].context_id,
            recovery.shadows[index].peer_mac,
        )
        for index in sample
    }

    server.nic.crash()
    # The shadow slab is host memory: a dead data path cannot touch it.
    assert len(recovery.shadows) == n_bulk + 1
    for index in sample:
        shadow = recovery.shadows[index]
        assert (
            shadow.four_tuple,
            shadow.snd_iss,
            shadow.rcv_irs,
            shadow.context_id,
            shadow.peer_mac,
        ) == expected[index]

    bed.sim.run(until=bed.sim.now + 50_000_000)

    assert recovery.watchdog_fired >= 1
    assert recovery.recoveries >= 1
    assert server.nic.reboots == 1
    assert recovery.reoffloaded_connections == n_bulk + 1
    for index, four in ((i, adopted[i]) for i in sample):
        record = server.nic.connection(index)
        assert record is not None
        assert record.four_tuple == four
        found, looked_up, _ = server.nic.datapath.lookup_engine.lookup(four)
        assert found and looked_up == index
        # Quiescent connections re-offload at their shadow's sequence
        # state: nothing sent, nothing received beyond the handshake.
        assert record.proto.seq == recovery.shadows[index].snd_una
        assert record.proto.ack == recovery.shadows[index].rcv_nxt
    # The NIC-side table was rebuilt, not leaked: one record per shadow.
    assert len(server.nic.datapath.conn_table) == n_bulk + 1


def test_handshake_timeout_is_typed_and_configurable():
    """An unanswered SYN gives up after max_syn_retries attempts with a
    HandshakeTimeoutError (a ConnectRefusedError, so existing callers
    keep working)."""
    max_retries = 3
    bed, server, client = build(
        client_kwargs={"config": ControlPlaneConfig(max_syn_retries=max_retries)}
    )
    client.station.port.link.set_up(False)
    ctx = client.new_context()
    outcome = {}

    def client_app():
        try:
            yield from ctx.connect(server.ip, 7000)
        except HandshakeTimeoutError:
            outcome["error"] = "handshake-timeout"
        except ConnectRefusedError:
            outcome["error"] = "refused"

    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=200_000_000)
    assert outcome.get("error") == "handshake-timeout"
    assert client.control_plane.syn_retransmits == max_retries - 1
    assert issubclass(HandshakeTimeoutError, ConnectRefusedError)
