"""InjectionLog and describe_frame units: the determinism substrate."""

from repro.faults import InjectionLog, describe_frame
from repro.proto.arp import ArpHeader
from repro.proto.ethernet import ETHERTYPE_ARP, EthernetHeader
from repro.proto.packet import Frame, make_tcp_frame
from repro.proto.tcp import FLAG_ACK, FLAG_PSH


def tcp_frame(**kw):
    defaults = dict(
        src_mac=0x020000000001,
        dst_mac=0x020000000002,
        src_ip=0x0A000001,
        dst_ip=0x0A000002,
        sport=4000,
        dport=7000,
    )
    defaults.update(kw)
    return make_tcp_frame(**defaults)


def test_describe_frame_uses_wire_fields_only():
    a = tcp_frame(seq=100, ack=7, flags=FLAG_ACK | FLAG_PSH, payload=b"xyz")
    b = tcp_frame(seq=100, ack=7, flags=FLAG_ACK | FLAG_PSH, payload=b"xyz")
    # Distinct frames (distinct frame_ids) must describe identically —
    # frame_id is a process-global counter and would break the digest.
    assert a.frame_id != b.frame_id
    assert describe_frame(a) == describe_frame(b)
    assert "seq=100" in describe_frame(a)
    assert "len=3" in describe_frame(a)
    assert str(a.frame_id) not in describe_frame(a).replace("seq=100", "")


def test_describe_frame_arp_and_raw():
    eth = EthernetHeader(dst=2, src=1, ethertype=ETHERTYPE_ARP)
    arp = Frame(eth, arp=ArpHeader(1, 1, 0x0A000001, 2, 0x0A000002))
    assert describe_frame(arp) == "arp"
    raw = Frame(EthernetHeader(dst=2, src=1, ethertype=0x1234), payload=b"abcd")
    assert describe_frame(raw) == "raw len=4"


def test_log_counts_and_actions():
    log = InjectionLog()
    log.record(10, "p", "loss", "drop", "switch", "a")
    log.record(20, "p", "loss", "drop", "switch", "b")
    log.record(30, "p", "stall", "stall", "server:fpc0", "50000ns")
    assert len(log) == 3
    assert log.counts() == {("loss", "drop"): 2, ("stall", "stall"): 1}
    assert [rec["detail"] for rec in log.actions("drop")] == ["a", "b"]
    assert log.actions("flush") == []


def test_log_digest_is_order_and_content_sensitive():
    a, b, c = InjectionLog(), InjectionLog(), InjectionLog()
    a.record(10, "p", "f", "drop", "switch")
    a.record(20, "p", "f", "drop", "switch")
    b.record(10, "p", "f", "drop", "switch")
    b.record(20, "p", "f", "drop", "switch")
    c.record(20, "p", "f", "drop", "switch")
    c.record(10, "p", "f", "drop", "switch")
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()
    assert len(a.digest()) == 64  # sha256 hex


def test_log_json_round_trip():
    import json

    log = InjectionLog()
    log.record(5, "plan", "fault", "drop", "switch", "detail")
    parsed = json.loads(log.to_json())
    assert parsed == log.to_jsonable()
    assert parsed[0]["t_ns"] == 5
    assert parsed[0]["action"] == "drop"
