"""Determinism regression (ISSUE 2 satellite): same seed + same plan ⇒
byte-identical injection logs and identical end-to-end stats across two
fresh runs of the whole simulation. This is the property that makes any
fault-matrix failure replayable from its printed seed.
"""

import pytest

from repro.faults.cli import run_plan

CASES = [
    ("bursty-loss", "flextoe", "flextoe"),
    ("reorder-window", "flextoe", "linux"),
    ("dma-flake", "tas", "flextoe"),
]


@pytest.mark.parametrize("plan,server,client", CASES)
def test_same_seed_same_trace(plan, server, client):
    first = run_plan(plan, seed=23, server_stack=server, client_stack=client, n_bytes=20000)
    second = run_plan(plan, seed=23, server_stack=server, client_stack=client, n_bytes=20000)
    assert not first["violations"]
    assert first["digest"] == second["digest"], "injection log diverged between same-seed runs"
    assert first["log"] == second["log"]
    assert first["event_counts"] == second["event_counts"]
    assert first["finished_ns"] == second["finished_ns"]
    assert first["retransmit_events"] == second["retransmit_events"]


def test_different_seed_different_trace():
    a = run_plan("bursty-loss", seed=23, n_bytes=20000)
    b = run_plan("bursty-loss", seed=24, n_bytes=20000)
    assert a["digest"] != b["digest"], "seed does not reach the fault RNG streams"


def test_log_records_are_time_ordered():
    result = run_plan("reorder-window", seed=23, n_bytes=20000)
    times = [rec["t_ns"] for rec in result["log"]]
    assert times == sorted(times)
    assert result["injections"] == len(result["log"])
