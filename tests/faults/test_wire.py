"""WireFaultInjector + wire spec units, no full testbed needed."""

import random

import pytest

from repro.faults import (
    BurstLoss,
    Corruption,
    Duplication,
    ReorderWindow,
    WireFaultInjector,
)
from repro.faults.log import InjectionLog
from repro.faults.wire import is_control_frame
from repro.proto.packet import make_tcp_frame
from repro.proto.tcp import FLAG_ACK, FLAG_RST, FLAG_SYN


class StubCtx:
    """Just enough of FaultContext for spec unit tests."""

    def __init__(self, seed=1):
        self.rng = random.Random(seed)
        self.log = InjectionLog()

    def log_event(self, action, target, detail=""):
        self.log.record(0, "unit", "unit", action, target, detail)


def frame(flags=FLAG_ACK, payload=b"pp"):
    return make_tcp_frame(
        src_mac=1, dst_mac=2, src_ip=3, dst_ip=4, sport=1000, dport=2000,
        seq=1, ack=2, flags=flags, payload=payload,
    )


def test_is_control_frame():
    assert is_control_frame(frame(flags=FLAG_SYN))
    assert is_control_frame(frame(flags=FLAG_RST))
    assert not is_control_frame(frame(flags=FLAG_ACK))


def test_burst_loss_drops_consecutive_runs():
    spec = BurstLoss(probability=1.0, burst_min=3, burst_max=3)
    ctx = StubCtx()
    outs = [spec.admit_one(ctx, frame()) for _ in range(3)]
    assert outs == [[], [], []]  # one trigger covers a 3-frame burst
    assert spec.dropped == 3
    assert len(ctx.log.actions("drop")) == 3


def test_burst_loss_passthrough_at_zero_probability():
    spec = BurstLoss(probability=0.0)
    ctx = StubCtx()
    f = frame()
    assert spec.admit_one(ctx, f) == [(f, 0)]
    assert len(ctx.log) == 0


def test_burst_loss_rejects_bad_probability():
    with pytest.raises(ValueError):
        BurstLoss(probability=1.5)


def test_corruption_marks_a_copy_not_the_original():
    ctx = StubCtx()
    f = frame()
    for fcs, meta in ((True, "fcs_bad"), (False, "csum_bad")):
        spec = Corruption(probability=1.0, fcs=fcs)
        [(out, delay)] = spec.admit_one(ctx, f)
        assert delay == 0
        assert out is not f
        assert out.get_meta(meta) is True
        assert f.get_meta(meta) is None  # pristine original
    assert len(ctx.log.actions("corrupt")) == 2


def test_duplication_emits_two_distinct_frames():
    spec = Duplication(probability=1.0)
    ctx = StubCtx()
    f = frame()
    out = spec.admit_one(ctx, f)
    assert len(out) == 2
    assert out[0][0] is f
    assert out[1][0] is not f
    assert out[1][0].tcp.seq == f.tcp.seq


def test_reorder_window_adds_delay():
    spec = ReorderWindow(probability=1.0, delay_ns=7_000)
    ctx = StubCtx()
    [(out, delay)] = spec.admit_one(ctx, frame())
    assert delay == 7_000
    assert spec.delayed == 1


def test_injector_protects_control_frames():
    inj = WireFaultInjector(protect_control=True)
    inj.add_effect(BurstLoss(probability=1.0), StubCtx())
    syn = frame(flags=FLAG_SYN)
    assert inj.admit(syn) == [(syn, 0)]
    assert inj.admit(frame()) == []  # data frame eaten by the burst
    assert inj.frames_seen == 2
    assert inj.frames_touched == 1


def test_injector_composes_delays_additively():
    inj = WireFaultInjector()
    inj.add_effect(ReorderWindow(probability=1.0, delay_ns=1_000), StubCtx())
    inj.add_effect(ReorderWindow(probability=1.0, delay_ns=500), StubCtx())
    [(_, delay)] = inj.admit(frame())
    assert delay == 1_500


def test_injector_duplication_then_loss_applies_per_copy():
    # Duplicate first, then a certain loss: both copies die.
    inj = WireFaultInjector()
    inj.add_effect(Duplication(probability=1.0), StubCtx())
    inj.add_effect(BurstLoss(probability=1.0, burst_min=1, burst_max=1), StubCtx())
    assert inj.admit(frame()) == []


def test_injector_remove_effect_restores_passthrough():
    inj = WireFaultInjector()
    spec = BurstLoss(probability=1.0, burst_min=1, burst_max=1)
    inj.add_effect(spec, StubCtx())
    assert inj.admit(frame()) == []
    inj.remove_effect(spec)
    assert spec not in inj.active_effects
    f = frame()
    assert inj.admit(f) == [(f, 0)]
