"""SegmentMangler: seeded wire-fault schedules over segment lists."""

import random

from repro.faults.mangler import SegmentMangler


def seg(i):
    return ("seg", i)


def test_no_faults_is_identity():
    mangler = SegmentMangler(random.Random(1))
    segments = [seg(i) for i in range(10)]
    assert mangler.mangle(segments) == segments
    assert mangler.ops == []


def test_seeded_schedule_is_deterministic():
    segments = [seg(i) for i in range(50)]

    def run(seed):
        mangler = SegmentMangler(
            random.Random(seed), loss_p=0.2, dup_p=0.2, reorder_p=0.3
        )
        out = mangler.mangle(segments)
        return out, [(op.index, op.op, op.arg) for op in mangler.ops]

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_loss_drops_and_records():
    mangler = SegmentMangler(random.Random(3), loss_p=1.0)
    out = mangler.mangle([seg(i) for i in range(5)])
    assert out == []
    assert [op.op for op in mangler.ops] == ["drop"] * 5


def test_duplication_appends_copies():
    mangler = SegmentMangler(random.Random(3), dup_p=1.0)
    out = mangler.mangle([seg(0), seg(1)])
    assert out == [seg(0), seg(0), seg(1), seg(1)]


def test_corruption_uses_callback_and_flags_op():
    mangler = SegmentMangler(random.Random(3), corrupt_p=1.0)
    out = mangler.mangle([seg(0)], corrupt_fn=lambda s: ("bad",) + s)
    assert out == [("bad", "seg", 0)]
    assert mangler.ops[0].op == "corrupt"


def test_reorder_is_bounded_by_span():
    random_src = random.Random(11)
    mangler = SegmentMangler(random_src, reorder_p=1.0, reorder_span=2)
    segments = [seg(i) for i in range(30)]
    out = mangler.mangle(segments)
    assert sorted(out) == sorted(segments)  # permutation, nothing lost
    assert out != segments  # something actually moved
    assert all(op.op == "swap" for op in mangler.ops)
    # Each recorded swap partner stays within the span window.
    for op in mangler.ops:
        assert 0 < op.arg - op.index <= 2


def test_mixed_load_mangling_keeps_benign_goodput_accounting_honest():
    # Mangle an interleaved benign/attack stream, deliver the survivors
    # into a GoodputMeter the way a receiving app would: benign payload
    # counts, attack payload is tallied separately. Loss may only ever
    # lower the benign number — duplicated attack segments must not
    # inflate it.
    from repro.sim import Simulator
    from repro.stats import GoodputMeter

    stream = [("benign", 100)] * 20 + [("attack", 1000)] * 200
    random.Random(5).shuffle(stream)
    mangler = SegmentMangler(random.Random(9), loss_p=0.2, dup_p=0.2, reorder_p=0.2)
    delivered = mangler.mangle(stream)

    sim = Simulator()
    meter = GoodputMeter(sim)
    for kind, nbytes in delivered:
        meter.record(nbytes, benign=(kind == "benign"))
    assert meter.benign_bytes <= 20 * 100 * 2  # dup-bounded
    assert meter.benign_bytes == sum(n for k, n in delivered if k == "benign")
    # Attack volume dwarfs benign 100:1, yet none of it leaks into the
    # benign tally.
    assert meter.attack_bytes == sum(n for k, n in delivered if k == "attack")
    assert meter.benign_bytes + meter.attack_bytes == meter.offered_bytes
