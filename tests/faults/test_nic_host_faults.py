"""NIC / host / link fault lifecycle units on a minimal live testbed."""

from repro.faults import (
    CoreJitter,
    DmaFlake,
    DoorbellLoss,
    FaultPlan,
    FpcStall,
    LinkFlap,
    MmioDelay,
    QueueBackpressure,
    StateCacheEvict,
)
from repro.harness import Testbed


def one_host_bed(seed=1):
    bed = Testbed(seed=seed)
    host = bed.add_flextoe_host("a")
    return bed, host


def test_dma_flake_installs_and_removes_hook():
    bed, host = one_host_bed()
    bed.install_fault_plan(
        FaultPlan("p").add(DmaFlake(probability=1.0, retry_delay_ns=123, duration_ns=1_000_000))
    )
    dma = host.nic.chip.dma
    bed.sim.run(until=10)
    assert dma.fault_hook is not None
    assert dma.fault_hook(64) == 123  # certain flake returns the retry delay
    bed.sim.run(until=2_000_000)
    assert dma.fault_hook is None, "hook must be removed when the window closes"


def test_doorbell_loss_hook_drops():
    bed, host = one_host_bed()
    bed.install_fault_plan(FaultPlan("p").add(DoorbellLoss(probability=1.0)))
    bed.sim.run(until=10)
    assert host.nic.chip.pcie.mmio_fault("db") is None  # None == dropped write


def test_mmio_delay_chains_after_prior_hook():
    bed, host = one_host_bed()
    bed.install_fault_plan(
        FaultPlan("p")
        .add(DoorbellLoss(probability=0.0))
        .add(MmioDelay(extra_ns=777))
    )
    bed.sim.run(until=10)
    assert host.nic.chip.pcie.mmio_fault("db") == 777


def test_queue_backpressure_saves_and_restores_capacity():
    bed, host = one_host_bed()
    rings = [host.nic.datapath.dma_ring]
    before = [ring.store.capacity for ring in rings]
    bed.install_fault_plan(
        FaultPlan("p").add(QueueBackpressure(ring="dma", capacity=1, duration_ns=1_000_000))
    )
    bed.sim.run(until=10)
    assert [ring.store.capacity for ring in rings] == [1]
    bed.sim.run(until=2_000_000)
    assert [ring.store.capacity for ring in rings] == before


def test_state_cache_evict_flushes_every_group():
    bed, host = one_host_bed()
    controller = bed.install_fault_plan(
        FaultPlan("p").add(StateCacheEvict(period_ns=100_000, duration_ns=350_000))
    )
    bed.sim.run(until=1_000_000)
    stages = host.nic.datapath.protocol_stages
    assert stages, "expected protocol stages on a full pipeline"
    assert all(stage.state_cache.forced_flushes >= 3 for stage in stages)
    assert len(controller.log.actions("flush")) == 4 * len(stages)


def test_fpc_stall_hits_stage_fpcs():
    bed, host = one_host_bed()
    bed.install_fault_plan(
        FaultPlan("p").add(FpcStall(stage="proto", stall_ns=10_000, period_ns=100_000, duration_ns=250_000))
    )
    bed.sim.run(until=1_000_000)
    fpcs = host.nic.datapath.stage_fpcs["proto"]
    assert fpcs
    assert all(fpc.stalls >= 2 for fpc in fpcs)
    assert all(fpc.stalled_ns >= 20_000 for fpc in fpcs)


def test_core_jitter_steals_the_core():
    bed, host = one_host_bed()
    bed.install_fault_plan(
        FaultPlan("p").add(CoreJitter(core=0, busy_ns=5_000, period_ns=50_000, duration_ns=120_000))
    )
    bed.sim.run(until=500_000)
    core = host.machine.cores[0]
    assert core.steals >= 2
    assert core.stolen_ns >= 10_000


def test_link_flap_bounces_the_link():
    bed, host = one_host_bed()
    controller = bed.install_fault_plan(
        FaultPlan("p").add(LinkFlap(down_ns=1_000, period_ns=100_000, duration_ns=250_000))
    )
    bed.sim.run(until=1_000_000)
    link = bed.topology.stations["a"].port.link
    assert link.up, "link must come back up after each flap"
    downs = controller.log.actions("link-down")
    ups = controller.log.actions("link-up")
    assert len(downs) == len(ups) >= 2


def test_when_predicate_defers_activation():
    bed, host = one_host_bed()
    gate = {"open": False}
    bed.install_fault_plan(
        FaultPlan("p").add(
            DoorbellLoss(probability=1.0, when=lambda _bed: gate["open"], poll_ns=10_000)
        )
    )
    bed.sim.run(until=100_000)
    assert host.nic.chip.pcie.mmio_fault is None, "activated before the predicate held"
    gate["open"] = True
    bed.sim.run(until=200_000)
    assert host.nic.chip.pcie.mmio_fault is not None
