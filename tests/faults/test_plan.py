"""FaultPlan composition, the plan registry, and controller install."""

import pytest

from repro.faults import BurstLoss, Corruption, FaultPlan, make_plan
from repro.faults.plans import CANONICAL, REGISTRY, canonical_plans
from repro.harness import Testbed


def test_plan_add_chains_and_iterates():
    plan = FaultPlan("p").add(BurstLoss()).add(Corruption())
    assert len(plan) == 2
    assert [type(s).__name__ for s in plan] == ["BurstLoss", "Corruption"]


def test_plan_dedupes_duplicate_labels_for_distinct_rng_streams():
    plan = FaultPlan("p").add(Corruption()).add(Corruption())
    labels = [spec.label for spec in plan]
    assert len(set(labels)) == 2, "identical labels would share an RNG stream"


def test_registry_covers_canonical_plans():
    assert set(CANONICAL) == {"bursty-loss", "reorder-window", "dma-flake"}
    assert set(CANONICAL) <= set(REGISTRY)
    assert [p.name for p in canonical_plans()] == ["bursty-loss", "reorder-window", "dma-flake"]


def test_make_plan_unknown_name():
    with pytest.raises(KeyError) as err:
        make_plan("no-such-plan")
    assert "bursty-loss" in str(err.value)


def test_install_wires_switch_and_tracks_controller():
    bed = Testbed(seed=1)
    bed.add_flextoe_host("a")
    controller = bed.install_fault_plan(FaultPlan("p").add(BurstLoss()))
    assert bed.switch.faults is controller.wire_injector
    assert bed.fault_controllers == [controller]


def test_install_refuses_second_wire_injector():
    bed = Testbed(seed=1)
    bed.add_flextoe_host("a")
    bed.install_fault_plan(FaultPlan("p1").add(BurstLoss()))
    with pytest.raises(RuntimeError):
        bed.install_fault_plan(FaultPlan("p2").add(BurstLoss()))


def test_double_install_of_one_controller_refused():
    bed = Testbed(seed=1)
    controller = bed.install_fault_plan(FaultPlan("p").add(BurstLoss()))
    with pytest.raises(RuntimeError):
        controller.install()


def test_nic_fault_skips_baseline_hosts_in_log():
    from repro.baselines import add_linux_host
    from repro.faults import DmaFlake

    bed = Testbed(seed=1)
    add_linux_host(bed, "lnx")
    controller = bed.install_fault_plan(FaultPlan("p").add(DmaFlake()))
    skips = controller.log.actions("skipped")
    assert len(skips) == 1 and skips[0]["target"] == "lnx"
