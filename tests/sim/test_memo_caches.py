"""Hot-path memoisation caches stay O(distinct inputs), not O(events).

Two memo caches sit under every simulated event: ``Clock.cycles_to_ns``
(stage costs, memory latencies) and ``wire_time_ns`` (serialization
delay). Both must (a) return exact values whether or not the memo takes
the hit path, and (b) hold at most their declared bound no matter how
many — or how adversarial — the inputs, so a long simulation's memory
stays flat.
"""

from repro.net.link import _WIRE_TIME_CACHE_MAX, wire_time_ns
from repro.net import link as link_module
from repro.sim.clock import Clock


def test_cycles_to_ns_cache_tracks_distinct_inputs():
    clock = Clock(800_000_000)
    inputs = [3, 17, 96, 3, 17, 3]  # repeats must not grow the cache
    for cycles in inputs * 1000:
        clock.cycles_to_ns(cycles)
    assert len(clock._ns_cache) == len(set(inputs))


def test_cycles_to_ns_cache_is_bounded_and_exact_past_the_bound():
    clock = Clock(777_000_001)  # awkward frequency: exercises rounding
    n = clock.CACHE_MAX + 500
    values = {cycles: clock.cycles_to_ns(cycles) for cycles in range(1, n)}
    assert len(clock._ns_cache) <= clock.CACHE_MAX
    # Entries past the bound are computed, not cached — same answers.
    for cycles, ns in values.items():
        assert clock.cycles_to_ns(cycles) == ns
        # Exact ceiling-division oracle.
        assert ns == -(-cycles * 1_000_000_000 // clock.hz)


def test_wire_time_cache_tracks_distinct_inputs():
    link_module._WIRE_TIME_CACHE.clear()
    rates = (10_000_000_000, 100_000_000_000)
    lengths = [64, 1500, 9000, 64, 1500]
    for _ in range(1000):
        for rate in rates:
            for length in lengths:
                wire_time_ns(rate, length)
    cache = link_module._WIRE_TIME_CACHE
    assert set(cache) == set(rates)
    for rate in rates:
        assert len(cache[rate]) == len(set(lengths))


def test_wire_time_cache_is_bounded_and_exact_past_the_bound():
    link_module._WIRE_TIME_CACHE.clear()
    rate = 10_000_000_000
    n = _WIRE_TIME_CACHE_MAX + 300
    values = {length: wire_time_ns(rate, length) for length in range(1, n)}
    assert len(link_module._WIRE_TIME_CACHE[rate]) <= _WIRE_TIME_CACHE_MAX
    for length, ns in values.items():
        assert wire_time_ns(rate, length) == ns
    link_module._WIRE_TIME_CACHE.clear()  # leave no cross-test residue
