"""Unit tests for stores, priority stores, and resources."""

import pytest

from repro.sim import PriorityStore, Resource, Simulator, Store
from repro.sim.core import SimulationError


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    seen = []

    def producer(sim):
        for i in range(5):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer(sim):
        for _ in range(5):
            item = yield store.get()
            seen.append(item)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer(sim):
        item = yield store.get()
        log.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(25)
        yield store.put("x")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert log == [(25, "x")]


def test_bounded_store_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=2)
    log = []

    def producer(sim):
        for i in range(4):
            yield store.put(i)
            log.append(("put", i, sim.now))

    def consumer(sim):
        yield sim.timeout(10)
        for _ in range(4):
            yield store.get()
            yield sim.timeout(10)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    # First two puts complete at t=0; the rest wait for consumer drains.
    assert log[0][2] == 0
    assert log[1][2] == 0
    assert log[2][2] == 10
    assert log[3][2] == 20


def test_store_try_put_try_get():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put("a")
    assert not store.try_put("b")
    ok, item = store.try_get()
    assert ok and item == "a"
    ok, item = store.try_get()
    assert not ok and item is None


def test_store_try_get_unblocks_waiting_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    done = []

    def producer(sim):
        yield store.put(1)
        yield store.put(2)
        done.append(sim.now)

    sim.process(producer(sim))
    sim.run()
    assert not done  # second put blocked
    ok, item = store.try_get()
    assert ok and item == 1
    sim.run()
    assert done  # unblocked by the try_get


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_store_tracks_max_occupancy():
    sim = Simulator()
    store = Store(sim)
    for i in range(7):
        store.try_put(i)
    for _ in range(3):
        store.try_get()
    assert store.max_occupancy == 7


def test_priority_store_orders_items():
    sim = Simulator()
    store = PriorityStore(sim)
    got = []

    def producer(sim):
        for priority in [5, 1, 3, 2, 4]:
            yield store.put((priority, "item%d" % priority))

    def consumer(sim):
        yield sim.timeout(1)
        for _ in range(5):
            item = yield store.get()
            got.append(item[0])

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [1, 2, 3, 4, 5]


def test_resource_mutual_exclusion():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    timeline = []

    def worker(sim, name, hold):
        grant = yield resource.request()
        timeline.append((name, "acquired", sim.now))
        yield sim.timeout(hold)
        grant.release()
        timeline.append((name, "released", sim.now))

    sim.process(worker(sim, "a", 10))
    sim.process(worker(sim, "b", 10))
    sim.run()
    assert timeline == [
        ("a", "acquired", 0),
        ("a", "released", 10),
        ("b", "acquired", 10),
        ("b", "released", 20),
    ]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    acquired_at = []

    def worker(sim):
        grant = yield resource.request()
        acquired_at.append(sim.now)
        yield sim.timeout(10)
        grant.release()

    for _ in range(4):
        sim.process(worker(sim))
    sim.run()
    assert acquired_at == [0, 0, 10, 10]


def test_resource_context_manager_releases():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def worker(sim):
        with (yield resource.request()):
            yield sim.timeout(5)

    sim.process(worker(sim))
    sim.process(worker(sim))
    sim.run()
    assert sim.now == 10
    assert resource.in_use == 0


def test_resource_double_release_rejected():
    sim = Simulator()
    resource = Resource(sim)

    def worker(sim):
        grant = yield resource.request()
        grant.release()
        with pytest.raises(SimulationError):
            grant.release()

    sim.process(worker(sim))
    sim.run()
