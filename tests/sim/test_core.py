"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_time():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(10)
        log.append(sim.now)
        yield sim.timeout(5)
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [10, 15]
    assert sim.now == 15


def test_timeout_value_passthrough():
    sim = Simulator()
    seen = []

    def proc(sim):
        value = yield sim.timeout(1, value="payload")
        seen.append(value)

    sim.process(proc(sim))
    sim.run()
    assert seen == ["payload"]


def test_zero_delay_timeout_runs_in_order():
    sim = Simulator()
    order = []

    def first(sim):
        yield sim.timeout(0)
        order.append("first")

    def second(sim):
        yield sim.timeout(0)
        order.append("second")

    sim.process(first(sim))
    sim.process(second(sim))
    sim.run()
    assert order == ["first", "second"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter(sim):
        value = yield gate
        log.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(42)
        gate.succeed("open")

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert log == [(42, "open")]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer(sim):
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    sim.process(waiter(sim))
    sim.process(failer(sim))
    sim.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_yield_already_triggered_event():
    sim = Simulator()
    log = []
    gate = sim.event()
    gate.succeed(7)

    def proc(sim):
        value = yield gate
        log.append(value)

    sim.process(proc(sim))
    sim.run()
    assert log == [7]


def test_yield_event_drained_long_ago():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(3)
    log = []

    def late(sim):
        yield sim.timeout(100)
        value = yield gate
        log.append((sim.now, value))

    sim.process(late(sim))
    sim.run()
    assert log == [(100, 3)]


def test_process_return_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(5)
        return 99

    def parent(sim):
        result = yield sim.process(child(sim))
        assert result == 99
        return result * 2

    proc = sim.process(parent(sim))
    sim.run()
    assert proc.value == 198


def test_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1)
        raise RuntimeError("child died")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["child died"]


def test_unhandled_process_exception_escapes_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    sim.process(bad(sim))
    with pytest.raises(RuntimeError):
        sim.run()


def test_interrupt_wakes_process_early():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(1000)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(10)
        victim.interrupt(cause="wake")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [("interrupted", 10, "wake")]


def test_interrupt_terminated_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_all_of_collects_values():
    sim = Simulator()
    results = []

    def proc(sim):
        t1 = sim.timeout(5, value="a")
        t2 = sim.timeout(10, value="b")
        values = yield AllOf(sim, [t1, t2])
        results.append((sim.now, sorted(values.values())))

    sim.process(proc(sim))
    sim.run()
    assert results == [(10, ["a", "b"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def proc(sim):
        t1 = sim.timeout(5, value="fast")
        t2 = sim.timeout(50, value="slow")
        values = yield AnyOf(sim, [t1, t2])
        results.append((sim.now, list(values.values())))

    sim.process(proc(sim))
    sim.run()
    assert results == [(5, ["fast"])]


def test_run_until_time_stops_clock():
    sim = Simulator()
    log = []

    def ticker(sim):
        while True:
            yield sim.timeout(10)
            log.append(sim.now)

    sim.process(ticker(sim))
    sim.run(until=100)
    assert sim.now == 100
    assert log == [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]


def test_run_until_event():
    sim = Simulator()
    gate = sim.event()

    def opener(sim):
        yield sim.timeout(33)
        gate.succeed("done")

    sim.process(opener(sim))
    value = sim.run(until=gate)
    assert value == "done"
    assert sim.now == 33


def test_yield_non_event_rejected():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_peek_and_step():
    sim = Simulator()
    sim.timeout(7)
    assert sim.peek() == 7
    sim.step()
    assert sim.now == 7
    assert sim.peek() is None


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def worker(sim, i):
        yield sim.timeout(i % 17)
        done.append(i)

    for i in range(500):
        sim.process(worker(sim, i))
    sim.run()
    assert len(done) == 500
