"""Property-based tests for the event-loop kernel.

The hot-path rewrite (inlined run loops, free-list event recycling) must
preserve three kernel invariants exactly:

* dispatch times never decrease over a run;
* events scheduled for the same instant fire in schedule order (FIFO
  tie-break via the global sequence counter);
* the free lists only ever hold dead, drained events — a recycled
  object can never alias an event something still waits on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Store
from repro.sim.core import POOL_MAX, Timeout


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=64))
def test_fire_times_nondecreasing(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.timeout(delay).callbacks.append(lambda _ev, s=sim: fired.append(s.now))
    sim.run()
    assert fired == sorted(fired)
    assert sorted(fired) == sorted(delays)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=8),
        min_size=1,
        max_size=12,
    )
)
def test_fire_times_nondecreasing_with_nested_scheduling(chains):
    # Timeouts created *during* the run (by running processes) exercise
    # the pool reuse path; time must still never move backwards.
    sim = Simulator()
    fired = []

    def runner(seq):
        for delay in seq:
            yield sim.timeout(delay)
            fired.append(sim.now)

    for seq in chains:
        sim.process(runner(seq))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == sum(len(seq) for seq in chains)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=64))
def test_same_instant_fifo_by_schedule_order(delays):
    # The tiny delay range forces many same-timestamp collisions; ties
    # must resolve in schedule order (stable by creation index).
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.timeout(delay).callbacks.append(lambda _ev, i=index: fired.append(i))
    sim.run()
    assert fired == sorted(range(len(delays)), key=lambda i: (delays[i], i))


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_pools_hold_only_dead_events(data):
    # At every observation point, every pooled event must be dead
    # (callbacks drained to None) and absent from the schedule heap, so
    # a pool can never hand out an object something still waits on.
    sim = Simulator()
    done = []

    def runner(seq):
        for delay in seq:
            yield sim.timeout(delay)
        done.append(sim.now)

    chains = data.draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=6),
            min_size=1,
            max_size=10,
        )
    )
    for seq in chains:
        sim.process(runner(seq))
    horizons = data.draw(st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=4))
    for horizon in sorted(horizons):
        sim.run(until=horizon)
        scheduled = {id(entry[3]) for entry in sim._heap}
        for pool in sim._pools.values():
            for event in pool:
                assert event.callbacks is None
                assert id(event) not in scheduled
    sim.run()
    assert len(done) == len(chains)


def test_referenced_event_is_never_recycled():
    # The refcount guard: an event the test still holds must not enter
    # the free list, and fresh timeouts must never alias it.
    sim = Simulator()
    held = sim.timeout(5)
    sim.run()
    assert all(event is not held for event in sim._pools[Timeout])
    fresh = [sim.timeout(0) for _ in range(POOL_MAX + 8)]
    assert all(event is not held for event in fresh)
    assert held.value is None  # still readable after the run


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=60))
def test_store_fifo_order_under_event_recycling(gaps):
    # StorePut/StoreGet are pooled too; a bounded store must still
    # behave as an exact FIFO for any producer/consumer interleaving.
    sim = Simulator()
    store = Store(sim, capacity=4)
    received = []

    def producer():
        for item, gap in enumerate(gaps):
            yield store.put(item)
            if gap:
                yield sim.timeout(gap)

    def consumer():
        for _ in gaps:
            item = yield store.get()
            received.append(item)
            yield sim.timeout(1)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == list(range(len(gaps)))
