"""TraceRecorder / TracepointRegistry: the disabled path must be free.

Table 2 of the paper quantifies tracing overhead when *on*; when *off*
the harness relies on tracing being zero-cost — no buffer appends, no
cycle charges — so benchmarks measure the data path, not the probes.
"""

from repro.flextoe.tracing import TRACEPOINTS, TracepointRegistry
from repro.sim import TraceRecorder


def test_disabled_recorder_never_appends():
    trace = TraceRecorder(enabled=False, limit=4)
    for i in range(1000):
        trace.emit(i, "proto", "rx.segment", payload=i)
    assert trace.records == []
    assert trace.dropped == 0


def test_disabled_registry_hits_are_free():
    registry = TracepointRegistry(enabled=False)
    for name in TRACEPOINTS:
        assert registry.hit(0, "proto", name) == 0
        assert registry.cost(name) == 0
    assert len(registry.recorder) == 0


def test_enable_disable_roundtrip():
    registry = TracepointRegistry(enabled=False)
    registry.enable_all()
    assert registry.hit(5, "proto", "rx.segment") == TRACEPOINTS["rx.segment"]
    assert len(registry.recorder) == 1
    registry.disable_all()
    assert registry.hit(6, "proto", "rx.segment") == 0
    assert len(registry.recorder) == 1  # nothing new appended


def test_clear_resets_records_and_drops():
    trace = TraceRecorder(enabled=True, limit=2)
    for i in range(5):
        trace.emit(i, "s", "e")
    assert len(trace) == 2
    assert trace.dropped == 3
    trace.clear()
    assert len(trace) == 0
    assert trace.dropped == 0
    trace.emit(9, "s", "e")
    assert trace.records == [(9, "s", "e", None)]


def test_selective_enable_appends_only_active():
    registry = TracepointRegistry(enabled=False)
    registry.enable(["ack.sent"])
    registry.hit(1, "proto", "ack.sent")
    registry.hit(2, "proto", "rx.segment")
    assert registry.count("ack.sent") == 1
    assert registry.count("rx.segment") == 0
