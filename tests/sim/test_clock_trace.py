"""Unit tests for clock conversion, tracing, and RNG pools."""

import pytest

from repro.sim import CYCLES_2GHZ, CYCLES_800MHZ, Clock, RngPool, TraceRecorder, ns_to_us, us_to_ns


def test_800mhz_cycle_duration():
    # 1 cycle at 800 MHz = 1.25 ns -> rounds up to 2 ns per single cycle,
    # but 8 cycles = exactly 10 ns.
    assert CYCLES_800MHZ.cycles_to_ns(8) == 10
    assert CYCLES_800MHZ.cycles_to_ns(800) == 1000


def test_2ghz_cycle_duration():
    assert CYCLES_2GHZ.cycles_to_ns(2) == 1
    assert CYCLES_2GHZ.cycles_to_ns(2000) == 1000


def test_rounding_never_optimistic():
    clock = Clock(3_000_000_000)  # 1 cycle = 0.333.. ns
    assert clock.cycles_to_ns(1) == 1
    assert clock.cycles_to_ns(3) == 1
    assert clock.cycles_to_ns(4) == 2


def test_ns_to_cycles_inverse():
    assert CYCLES_800MHZ.ns_to_cycles(1000) == 800
    assert CYCLES_2GHZ.ns_to_cycles(1000) == 2000


def test_invalid_frequency_rejected():
    with pytest.raises(ValueError):
        Clock(0)


def test_us_ns_roundtrip():
    assert us_to_ns(1.5) == 1500
    assert ns_to_us(2500) == 2.5


def test_trace_disabled_records_nothing():
    trace = TraceRecorder(enabled=False)
    trace.emit(0, "stage", "event")
    assert len(trace) == 0


def test_trace_filter_and_count():
    trace = TraceRecorder(enabled=True)
    trace.emit(1, "proto", "win_update")
    trace.emit(2, "proto", "ooo_drop")
    trace.emit(3, "pre", "win_update")
    assert trace.count(source="proto") == 2
    assert trace.count(event="win_update") == 2
    assert trace.count(source="pre", event="win_update") == 1


def test_trace_limit_drops():
    trace = TraceRecorder(enabled=True, limit=2)
    for i in range(5):
        trace.emit(i, "s", "e")
    assert len(trace) == 2
    assert trace.dropped == 3


def test_rng_streams_independent_and_reproducible():
    pool_a = RngPool(seed=7)
    pool_b = RngPool(seed=7)
    xs = [pool_a.stream("loss").random() for _ in range(5)]
    ys = [pool_b.stream("loss").random() for _ in range(5)]
    assert xs == ys
    zs = [pool_a.stream("workload").random() for _ in range(5)]
    assert xs != zs


def test_rng_different_seeds_differ():
    a = RngPool(seed=1).stream("x").random()
    b = RngPool(seed=2).stream("x").random()
    assert a != b
