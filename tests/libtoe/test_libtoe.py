"""libTOE: circular buffers, socket bookkeeping, epoll semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import Testbed
from repro.host.memory import HugepagePool
from repro.libtoe import CircularBuffer, EventPoll


def make_buffer(size=256):
    pool = HugepagePool(n_pages=1)
    return CircularBuffer(pool.alloc(size))


def test_circular_write_read_simple():
    buf = make_buffer()
    buf.write(0, b"hello")
    assert buf.read(0, 5) == b"hello"


def test_circular_wraparound():
    buf = make_buffer(size=16)
    buf.write(12, b"abcdefgh")  # wraps: 4 bytes at end, 4 at start
    assert buf.read(12, 8) == b"abcdefgh"
    assert buf.read_at_offset(12, 4) == b"abcd"
    assert buf.read_at_offset(0, 4) == b"efgh"


@settings(max_examples=50)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.binary(min_size=1, max_size=300),
)
def test_circular_roundtrip_any_position(pos, payload):
    buf = make_buffer(size=128)
    data = payload[:128]
    buf.write(pos, data)
    assert buf.read(pos, len(data)) == data


def test_as_triple():
    buf = make_buffer(size=64)
    region, base, size = buf.as_triple()
    assert size == 64
    assert base == region.addr


def build_pair():
    bed = Testbed(seed=11)
    server = bed.add_flextoe_host("server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    return bed, server, client


def test_nonblocking_recv_returns_none():
    bed, server, client = build_pair()
    out = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        out["early"] = yield from server_ctx.recv(sock, 100, blocking=False)
        data = yield from server_ctx.recv(sock, 100)
        out["data"] = data

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        yield from client_ctx.sim_sleep(5_000_000)
        yield from client_ctx.send(sock, b"late")

    client_ctx.sim_sleep = lambda ns: iter([client_ctx.sim.timeout(ns)])
    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=100_000_000)
    assert out.get("early") is None
    assert out.get("data") == b"late"


def test_send_blocks_until_acked_space():
    """A transmit larger than the socket buffer completes once ACKs
    free space (TX_ACKED notifications drive tx_free)."""
    bed, server, client = build_pair()
    payload = bytes(range(256)) * 1200  # 300 KB > 256 KB tx buffer
    out = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        got = 0
        while got < len(payload):
            chunk = yield from server_ctx.recv(sock, 65536)
            if not chunk:
                break
            got += len(chunk)
        out["got"] = got

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        sent = yield from client_ctx.send(sock, payload)
        out["sent"] = sent

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=2_000_000_000)
    assert out.get("sent") == len(payload)
    assert out.get("got") == len(payload)


def test_epoll_level_triggered_rearm():
    bed, server, client = build_pair()
    out = {"waits": 0}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        epoll = EventPoll(server_ctx)
        epoll.register(sock)
        # First wait: socket becomes readable with 10 bytes.
        ready = yield from epoll.wait()
        out["waits"] += 1
        assert sock in ready
        data = yield from server_ctx.recv(sock, 4)  # partial read
        out["first"] = data
        # Level-triggered: still readable, second wait returns at once.
        ready = yield from epoll.wait()
        out["waits"] += 1
        assert sock in ready
        out["rest"] = yield from server_ctx.recv(sock, 100)

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        yield from client_ctx.send(sock, b"0123456789")

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=100_000_000)
    assert out.get("first") == b"0123"
    assert out.get("rest") == b"456789"


def test_epoll_unregister_stops_events():
    bed, server, client = build_pair()
    out = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        epoll = EventPoll(server_ctx)
        epoll.register(sock)
        ready = yield from epoll.wait()
        epoll.unregister(sock)
        assert not epoll._ready
        out["done"] = True

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        yield from client_ctx.send(sock, b"x")

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=100_000_000)
    assert out.get("done")


def test_socket_byte_counters():
    bed, server, client = build_pair()
    out = {}
    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        yield from server_ctx.recv(sock, 100)
        yield from server_ctx.send(sock, b"12345678")
        out["sock"] = sock

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        yield from client_ctx.send(sock, b"abc")
        yield from client_ctx.recv(sock, 100)

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=100_000_000)
    sock = out["sock"]
    assert sock.bytes_received == 3
    assert sock.bytes_sent == 8
