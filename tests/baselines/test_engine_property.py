"""Property-based fuzzing of the host TCP engine.

Random payloads pushed through random channel behaviors (drop,
duplicate, reorder within a window) with periodic timer ticks: the
receiver must assemble exactly the sent stream, for every recovery
flavor (SACK / go-back-N / RTO-only) and reassembly policy.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.engine import ESTABLISHED, HostTcpEngine, TcpEngineConfig


class Channel:
    """Applies a random schedule of impairments between two engines.

    Anti-starvation: a given segment (seq, length) is dropped at most 5
    times and then always delivered — otherwise hypothesis's seed search
    finds channels that drop every retransmission, defeating any
    probabilistic liveness argument."""

    MAX_DROPS_PER_SEGMENT = 5

    def __init__(self, rng, drop_p, dup_p, reorder_p):
        self.rng = rng
        self.drop_p = drop_p
        self.dup_p = dup_p
        self.reorder_p = reorder_p
        self.queue = []
        self._drops = {}

    def push(self, frame):
        roll = self.rng.random()
        key = (frame.tcp.seq, len(frame.payload), frame.tcp.flags)
        if roll < self.drop_p and self._drops.get(key, 0) < self.MAX_DROPS_PER_SEGMENT:
            self._drops[key] = self._drops.get(key, 0) + 1
            return
        self.queue.append(frame)
        if roll < self.drop_p + self.dup_p:
            self.queue.append(frame)
        if self.rng.random() < self.reorder_p and len(self.queue) >= 2:
            self.queue[-1], self.queue[-2] = self.queue[-2], self.queue[-1]

    def drain(self):
        out, self.queue = self.queue, []
        return out


class Pair:
    def __init__(self, config_a, config_b, rng, drop_p, dup_p, reorder_p):
        self.now = 0
        self.chan_ab = Channel(rng, drop_p, dup_p, reorder_p)
        self.chan_ba = Channel(rng, drop_p, dup_p, reorder_p)
        self.a = HostTcpEngine(0xA, 1, config_a, self._cb(self.chan_ab))
        self.b = HostTcpEngine(0xB, 2, config_b, self._cb(self.chan_ba))

    def _cb(self, channel):
        class Callbacks:
            @staticmethod
            def transmit(frame):
                channel.push(frame)

            @staticmethod
            def syn_to_unknown_port(frame):
                return True

            on_connected = on_accept = on_data = on_tx_space = on_eof = on_reset = staticmethod(
                lambda conn: None
            )

        return Callbacks()

    def step(self):
        self.now += 50_000
        for frame in self.chan_ab.drain():
            self.b.on_segment(frame, self.now)
        for frame in self.chan_ba.drain():
            self.a.on_segment(frame, self.now)
        if self.now % 200_000 == 0:
            self.a.tick(self.now)
            self.b.tick(self.now)


CONFIGS = [
    TcpEngineConfig(mss=120, recovery="sack", reassembly="full", rto_ns=400_000, min_rto_ns=200_000),
    TcpEngineConfig(mss=120, recovery="gbn", reassembly="drop", rto_ns=400_000, min_rto_ns=200_000),
    TcpEngineConfig(mss=120, recovery="gbn", reassembly="interval", rto_ns=400_000, min_rto_ns=200_000),
    TcpEngineConfig(mss=120, recovery="rto_only", reassembly="interval", rto_ns=400_000, min_rto_ns=200_000),
]


@settings(max_examples=25, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=4000),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
    seed=st.integers(min_value=0, max_value=2**31),
    drop_p=st.floats(min_value=0.0, max_value=0.25),
    dup_p=st.floats(min_value=0.0, max_value=0.1),
    reorder_p=st.floats(min_value=0.0, max_value=0.3),
)
def test_stream_delivery_under_impairments(data, config_index, seed, drop_p, dup_p, reorder_p):
    rng = random.Random(seed)
    config = CONFIGS[config_index]
    pair = Pair(config, config, rng, drop_p, dup_p, reorder_p)
    conn_a = pair.a.open((1, 2, 1111, 80), 0xB, 0)
    for _ in range(200):
        pair.step()
        if conn_a.state == ESTABLISHED:
            break
    assert conn_a.state == ESTABLISHED, "handshake failed to converge"
    conn_b = pair.b.conns[(2, 1, 80, 1111)]

    sent = 0
    received = bytearray()
    for round_index in range(3000):
        if sent < len(data):
            sent += pair.a.app_send(conn_a, data[sent : sent + 500], pair.now)
        pair.step()
        received += pair.b.app_recv(conn_b, 10_000, pair.now)
        if len(received) == len(data) and conn_a.snd_una_pos == len(data):
            break
    assert bytes(received) == data, "stream corrupted or incomplete"
    # Sender fully acknowledged.
    assert conn_a.snd_una_pos == len(data)
    assert conn_a.flight == 0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    drop_p=st.floats(min_value=0.0, max_value=0.2),
)
def test_bidirectional_exchange_under_loss(seed, drop_p):
    rng = random.Random(seed)
    config = TcpEngineConfig(mss=200, recovery="sack", reassembly="full", rto_ns=400_000, min_rto_ns=200_000)
    pair = Pair(config, config, rng, drop_p, 0.02, 0.1)
    conn_a = pair.a.open((1, 2, 1111, 80), 0xB, 0)
    for _ in range(200):
        pair.step()
        if conn_a.state == ESTABLISHED:
            break
    conn_b = pair.b.conns[(2, 1, 80, 1111)]
    blob_a = bytes((i * 3) % 256 for i in range(2500))
    blob_b = bytes((i * 5 + 1) % 256 for i in range(2500))
    sent_a = sent_b = 0
    got_a = bytearray()
    got_b = bytearray()
    for _ in range(4000):
        if sent_a < len(blob_a):
            sent_a += pair.a.app_send(conn_a, blob_a[sent_a : sent_a + 400], pair.now)
        if sent_b < len(blob_b):
            sent_b += pair.b.app_send(conn_b, blob_b[sent_b : sent_b + 400], pair.now)
        pair.step()
        got_b += pair.b.app_recv(conn_b, 10_000, pair.now)
        got_a += pair.a.app_recv(conn_a, 10_000, pair.now)
        if len(got_a) == len(blob_b) and len(got_b) == len(blob_a):
            break
    assert bytes(got_b) == blob_a
    assert bytes(got_a) == blob_b
