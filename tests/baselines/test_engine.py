"""Unit tests for the host TCP engine (simulation-free)."""

import pytest

from repro.baselines.engine import (
    CLOSE_WAIT,
    ESTABLISHED,
    HostTcpEngine,
    SYN_RCVD,
    SYN_SENT,
    TcpEngineConfig,
    WINDOW_SCALE,
)
from repro.proto.tcp import FLAG_ACK, FLAG_FIN, FLAG_PSH, FLAG_SYN


class Harness:
    """Two engines joined back-to-back through capture queues."""

    def __init__(self, config_a=None, config_b=None):
        self.now = 0
        self.a_out = []
        self.b_out = []
        self.events = []
        self.engine_a = HostTcpEngine(0xA, 0x0A000001, config_a or TcpEngineConfig(), self._cb("a"))
        self.engine_b = HostTcpEngine(0xB, 0x0A000002, config_b or TcpEngineConfig(), self._cb("b"))

    def _cb(self, side):
        harness = self

        class Callbacks:
            def transmit(self, frame):
                (harness.a_out if side == "a" else harness.b_out).append(frame)

            def syn_to_unknown_port(self, frame):
                return True

            def on_connected(self, conn):
                harness.events.append((side, "connected"))

            def on_accept(self, conn):
                harness.events.append((side, "accept"))

            def on_data(self, conn):
                harness.events.append((side, "data"))

            def on_tx_space(self, conn):
                pass

            def on_eof(self, conn):
                harness.events.append((side, "eof"))

            def on_reset(self, conn):
                harness.events.append((side, "reset"))

        return Callbacks()

    def pump(self, drop=None, max_rounds=50):
        """Exchange queued frames until quiescent. ``drop(frame)`` may
        return True to lose a frame."""
        for _ in range(max_rounds):
            if not self.a_out and not self.b_out:
                return
            a_batch, self.a_out = self.a_out, []
            b_batch, self.b_out = self.b_out, []
            for frame in a_batch:
                if drop is None or not drop(frame):
                    self.engine_b.on_segment(frame, self.now)
            for frame in b_batch:
                if drop is None or not drop(frame):
                    self.engine_a.on_segment(frame, self.now)
            self.now += 10_000

    def open_pair(self, port=80):
        conn_a = self.engine_a.open((0x0A000001, 0x0A000002, 5555, port), 0xB, self.now)
        self.pump()
        conn_b = self.engine_b.conns[(0x0A000002, 0x0A000001, port, 5555)]
        assert conn_a.state == ESTABLISHED
        assert conn_b.state == ESTABLISHED
        return conn_a, conn_b


def test_three_way_handshake():
    h = Harness()
    conn_a, conn_b = h.open_pair()
    assert ("a", "connected") in h.events
    assert ("b", "accept") in h.events


def test_data_transfer_and_ack():
    h = Harness()
    conn_a, conn_b = h.open_pair()
    h.engine_a.app_send(conn_a, b"hello world", h.now)
    h.pump()
    assert bytes(conn_b.rx_ready) == b"hello world"
    assert conn_a.snd_una_pos == 11
    assert conn_a.flight == 0


def test_segmentation_by_mss():
    h = Harness(TcpEngineConfig(mss=100), TcpEngineConfig(mss=100))
    conn_a, conn_b = h.open_pair()
    data = bytes(range(256)) * 2  # 512 bytes -> 6 segments
    h.engine_a.app_send(conn_a, data, h.now)
    h.pump()
    assert bytes(conn_b.rx_ready) == data


def test_cwnd_limits_initial_burst():
    config = TcpEngineConfig(mss=100, init_cwnd_segments=2)
    h = Harness(config, TcpEngineConfig(mss=100))
    conn_a, conn_b = h.open_pair()
    h.engine_a.app_send(conn_a, b"z" * 1000, h.now)
    # Only 2 segments may be in flight before any ACK.
    assert conn_a.flight == 200
    h.pump()
    assert bytes(conn_b.rx_ready) == b"z" * 1000  # window opens as ACKs return


def test_receive_window_honored():
    config_b = TcpEngineConfig(rx_buffer=300, mss=100)
    h = Harness(TcpEngineConfig(mss=100), config_b)
    conn_a, conn_b = h.open_pair()
    h.engine_a.app_send(conn_a, b"y" * 1000, h.now)
    h.pump()
    assert len(conn_b.rx_ready) <= 300
    # Application drains; window reopens; the rest flows.
    while conn_a.snd_una_pos < 1000:
        h.engine_b.app_recv(conn_b, 100, h.now)
        h.now += 100_000
        h.engine_a.tick(h.now)
        h.engine_b.tick(h.now)
        h.pump()
    assert conn_a.snd_una_pos == 1000


def test_fin_exchange():
    h = Harness()
    conn_a, conn_b = h.open_pair()
    h.engine_a.app_send(conn_a, b"bye", h.now)
    h.pump()
    h.engine_a.app_close(conn_a, h.now)
    h.pump()
    assert conn_b.state == CLOSE_WAIT
    assert ("b", "eof") in h.events
    assert conn_a.fin_acked


def test_retransmit_on_rto():
    h = Harness()
    conn_a, conn_b = h.open_pair()
    h.engine_a.app_send(conn_a, b"lost", h.now)
    # Drop everything on the first exchange.
    h.pump(drop=lambda f: True, max_rounds=1)
    assert conn_a.flight == 4
    # Time passes; the RTO fires and the data is resent.
    h.now += 10_000_000
    h.engine_a.tick(h.now)
    h.pump()
    assert bytes(conn_b.rx_ready) == b"lost"
    assert conn_a.timeouts == 1


def test_fast_retransmit_sack():
    config = TcpEngineConfig(mss=100, recovery="sack", reassembly="full")
    h = Harness(config, config)
    conn_a, conn_b = h.open_pair()
    dropped = {"count": 0}

    def drop_first_data(frame):
        if frame.payload and frame.tcp.seq == conn_a.snd_seq(0) and dropped["count"] == 0:
            dropped["count"] += 1
            return True
        return False

    h.engine_a.app_send(conn_a, b"x" * 500, h.now)
    h.pump(drop=drop_first_data)
    assert conn_a.fast_retransmits == 1
    assert conn_a.timeouts == 0
    assert bytes(conn_b.rx_ready) == b"x" * 500
    # SACK: only the missing 100 bytes were retransmitted.
    assert conn_a.retransmitted_bytes == 100


def test_go_back_n_retransmits_everything():
    config = TcpEngineConfig(mss=100, recovery="gbn", reassembly="drop")
    h = Harness(config, config)
    conn_a, conn_b = h.open_pair()
    dropped = {"count": 0}

    def drop_first_data(frame):
        if frame.payload and frame.tcp.seq == conn_a.snd_seq(0) and dropped["count"] == 0:
            dropped["count"] += 1
            return True
        return False

    h.engine_a.app_send(conn_a, b"x" * 500, h.now)
    h.pump(drop=drop_first_data)
    assert bytes(conn_b.rx_ready) == b"x" * 500
    assert conn_a.fast_retransmits == 1


def test_rto_only_stack_ignores_dupacks():
    config = TcpEngineConfig(mss=100, recovery="rto_only", reassembly="interval")
    h = Harness(config, config)
    conn_a, conn_b = h.open_pair()
    dropped = {"count": 0}

    def drop_first_data(frame):
        if frame.payload and frame.tcp.seq == conn_a.snd_seq(0) and dropped["count"] == 0:
            dropped["count"] += 1
            return True
        return False

    h.engine_a.app_send(conn_a, b"x" * 500, h.now)
    h.pump(drop=drop_first_data)
    assert conn_a.fast_retransmits == 0
    assert bytes(conn_b.rx_ready) == b""  # stuck until RTO
    h.now += 20_000_000
    h.engine_a.tick(h.now)
    h.pump()
    assert bytes(conn_b.rx_ready) == b"x" * 500
    assert conn_a.timeouts == 1


def test_full_reassembly_out_of_order():
    config = TcpEngineConfig(mss=100, reassembly="full")
    h = Harness(config, config)
    conn_a, conn_b = h.open_pair()
    # Three disjoint holes: full reassembly keeps all of them.
    data = bytes(range(250)) * 2
    h.engine_a.app_send(conn_a, data, h.now)
    # Deliver segments 2,4,1,3,0 manually.
    frames = list(h.a_out)
    h.a_out = []
    order = [2, 4, 1, 3, 0]
    for index in order:
        h.engine_b.on_segment(frames[index], h.now)
    assert bytes(conn_b.rx_ready) == data


def test_drop_policy_discards_ooo():
    config = TcpEngineConfig(mss=100, reassembly="drop")
    h = Harness(config, config)
    conn_a, conn_b = h.open_pair()
    h.engine_a.app_send(conn_a, b"k" * 300, h.now)
    frames = list(h.a_out)
    h.a_out = []
    h.engine_b.on_segment(frames[1], h.now)  # out of order
    assert not conn_b.rx_ooo
    h.engine_b.on_segment(frames[0], h.now)
    assert bytes(conn_b.rx_ready) == b"k" * 100  # only seg 0 delivered


def test_syn_to_closed_port_gets_rst():
    h = Harness()
    h.engine_b.callbacks.syn_to_unknown_port = lambda frame: False
    conn_a = h.engine_a.open((0x0A000001, 0x0A000002, 5555, 81), 0xB, h.now)
    h.pump()
    assert ("a", "reset") in h.events
    assert conn_a.state == "closed"


def test_zero_window_probe():
    # Buffer sizes are multiples of the window-scale granularity (128B).
    config_b = TcpEngineConfig(rx_buffer=1024, mss=1024)
    h = Harness(TcpEngineConfig(mss=1024), config_b)
    conn_a, conn_b = h.open_pair()
    h.engine_a.app_send(conn_a, b"w" * 1024, h.now)
    h.pump()
    h.engine_a.app_send(conn_a, b"v" * 512, h.now)
    h.pump()
    assert conn_a.remote_win == 0
    assert conn_b.rx_space == 0
    # App drains; the window update it would send is lost.
    h.engine_b.app_recv(conn_b, 1024, h.now)
    h.b_out = []  # lose the window update
    # Persist timer probes and discovers the opened window.
    for _ in range(10):
        h.now += 10_000_000
        h.engine_a.tick(h.now)
        h.pump()
        if conn_a.snd_una_pos >= 1536:
            break
    assert bytes(conn_b.rx_ready) == b"v" * 512


def test_timestamps_echoed():
    h = Harness()
    conn_a, conn_b = h.open_pair()
    h.now = 5_000_000
    h.engine_a.app_send(conn_a, b"t", h.now)
    frame = h.a_out[-1]
    assert frame.tcp.options.ts_val == 5_000
    h.pump()
    # b's ACK echoes a's timestamp.
    assert conn_b.peer_ts == 5_000
