"""Stack-personality behavior: where cycles land, lock effects, config."""

import pytest

from repro.baselines import add_chelsio_host, add_linux_host, add_tas_host
from repro.harness import Testbed


def run_workload(stack_adder, n_requests=40):
    bed = Testbed(seed=13)
    server = stack_adder(bed, "server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    server_ctx = server.new_context(0)
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        for _ in range(n_requests):
            data = yield from server_ctx.recv(sock, 4096)
            if not data:
                return
            yield from server_ctx.send(sock, data)

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        for _ in range(n_requests):
            yield from client_ctx.send(sock, b"y" * 64)
            yield from client_ctx.recv(sock, 4096)

    bed.sim.process(server_app(), name="server")
    bed.sim.process(client_app(), name="client")
    bed.sim.run(until=500_000_000)
    return server


def test_tas_tcp_cycles_on_fast_path_cores():
    server = run_workload(lambda bed, name: add_tas_host(bed, name, fast_path_cores=2))
    cores = server.machine.cores
    fast_path = cores[-2:]
    app = cores[0]
    fast_tcp = sum(c.accounting.cycles.get("tcp", 0) for c in fast_path)
    # RX TCP processing runs on the dedicated fast-path cores.
    assert fast_tcp > 0
    # The app core pays sockets but TX-side tcp too (libTAS enqueue);
    # the fast path carries the per-segment receive work.
    assert app.accounting.cycles.get("sockets", 0) > 0


def test_chelsio_has_no_host_rx_tcp_cycles():
    server = run_workload(add_chelsio_host)
    acct = server.machine.aggregate_accounting()
    # The TOE does TCP; the host pays driver + sockets.
    assert acct.cycles.get("driver", 0) > 0
    assert acct.cycles.get("sockets", 0) > 0
    # Residual host tcp cycles far below Linux's.
    linux_server = run_workload(add_linux_host)
    linux_acct = linux_server.machine.aggregate_accounting()
    assert linux_acct.cycles.get("tcp", 0) > 3 * acct.cycles.get("tcp", 1)


def test_linux_charges_all_categories():
    server = run_workload(add_linux_host)
    acct = server.machine.aggregate_accounting()
    for category in ("driver", "tcp", "sockets", "app", "other"):
        if category == "app":
            continue  # echo has no app cycles
        assert acct.cycles.get(category, 0) > 0, category


def test_engine_configs_match_paper_traits():
    from repro.baselines import ChelsioPersonality, LinuxPersonality, TasPersonality

    linux = LinuxPersonality()
    assert linux.engine_config.recovery == "sack"
    assert linux.engine_config.reassembly == "full"
    assert linux.kernel_lock

    tas = TasPersonality()
    assert tas.engine_config.recovery == "gbn"
    assert tas.engine_config.reassembly == "drop"
    assert tas.dedicated_cores > 0

    chelsio = ChelsioPersonality()
    assert chelsio.engine_config.recovery == "rto_only"
    assert chelsio.nic_tcp
    assert chelsio.engine_config.min_rto_ns >= 5_000_000  # conservative HW RTO


def test_stack_counters_consistent():
    server = run_workload(add_tas_host, n_requests=10)
    # The engine served one connection; it is still established.
    assert len(server.engine.conns) == 1
    conn = next(iter(server.engine.conns.values()))
    assert conn.bytes_acked_total >= 10 * 64
