"""Link serialization/propagation timing and port accounting."""

import pytest

from repro.net import Link, Port
from repro.net.link import wire_time_ns
from repro.proto import make_tcp_frame


def make_frame(payload=b"x" * 100):
    return make_tcp_frame(1, 2, 0x0A000001, 0x0A000002, 10, 20, payload=payload)


def test_wire_time_includes_overhead_and_min_frame():
    # 64B minimum + 24B overhead at 1 Gbps = 88 * 8 ns
    assert wire_time_ns(1_000_000_000, 1) == 88 * 8
    assert wire_time_ns(1_000_000_000, 64) == 88 * 8
    # 1500B frame + overhead
    assert wire_time_ns(1_000_000_000, 1500) == 1524 * 8


def test_delivery_time_is_serialization_plus_propagation():
    from repro.sim import Simulator

    sim = Simulator()
    a = Port(sim, "a")
    b = Port(sim, "b")
    Link(sim, a, b, rate_bps=1_000_000_000, prop_delay_ns=1000)
    arrivals = []
    b.receiver = lambda frame: arrivals.append(sim.now)
    frame = make_frame(payload=b"")
    a.send(frame)
    sim.run()
    expected = wire_time_ns(1_000_000_000, frame.wire_len) + 1000
    assert arrivals == [expected]


def test_back_to_back_frames_serialize_sequentially():
    from repro.sim import Simulator

    sim = Simulator()
    a = Port(sim, "a")
    b = Port(sim, "b")
    Link(sim, a, b, rate_bps=1_000_000_000, prop_delay_ns=0)
    arrivals = []
    b.receiver = lambda frame: arrivals.append(sim.now)
    frame = make_frame(payload=b"")
    ser = wire_time_ns(1_000_000_000, frame.wire_len)
    a.send(frame)
    a.send(make_frame(payload=b""))
    sim.run()
    assert arrivals == [ser, 2 * ser]


def test_directions_are_independent():
    from repro.sim import Simulator

    sim = Simulator()
    a = Port(sim, "a")
    b = Port(sim, "b")
    Link(sim, a, b, rate_bps=1_000_000_000, prop_delay_ns=0)
    a_arrivals = []
    b_arrivals = []
    a.receiver = lambda frame: a_arrivals.append(sim.now)
    b.receiver = lambda frame: b_arrivals.append(sim.now)
    a.send(make_frame(payload=b""))
    b.send(make_frame(payload=b""))
    sim.run()
    # Full duplex: both arrive at one serialization time.
    assert a_arrivals == b_arrivals


def test_port_counters():
    from repro.sim import Simulator

    sim = Simulator()
    a = Port(sim, "a")
    b = Port(sim, "b")
    Link(sim, a, b, rate_bps=1_000_000_000, prop_delay_ns=0)
    b.receiver = lambda frame: None
    frame = make_frame()
    a.send(frame)
    sim.run()
    assert a.tx_frames == 1
    assert a.tx_bytes == frame.wire_len
    assert b.rx_frames == 1
    assert b.rx_bytes == frame.wire_len


def test_unconnected_port_send_raises():
    from repro.sim import Simulator

    port = Port(Simulator(), "lonely")
    with pytest.raises(RuntimeError):
        port.send(make_frame())
