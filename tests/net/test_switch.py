"""Switch forwarding, queue policy (ECN/WRED/tail drop), loss injection."""

import random

from repro.net import Link, LossInjector, Port, Switch, SwitchPortConfig, Topology
from repro.proto import make_tcp_frame
from repro.proto.ip import ECN_ECT0
from repro.sim import Simulator


def build_pair(sim, switch=None, **topo_kwargs):
    topo = Topology(sim, switch=switch, **topo_kwargs)
    a = topo.attach("a", mac=0xA, ip=0x0A000001)
    b = topo.attach("b", mac=0xB, ip=0x0A000002)
    return topo, a, b


def frame_a_to_b(payload=b"x" * 64, ecn=0):
    return make_tcp_frame(0xA, 0xB, 0x0A000001, 0x0A000002, 1, 2, payload=payload, ecn=ecn)


def test_unicast_forwarding():
    sim = Simulator()
    topo, a, b = build_pair(sim)
    got = []
    b.port.receiver = lambda frame: got.append(frame)
    a.port.receiver = lambda frame: got.append(("wrong", frame))
    a.port.send(frame_a_to_b())
    sim.run()
    assert len(got) == 1
    assert got[0].eth.dst == 0xB


def test_broadcast_floods_other_ports():
    sim = Simulator()
    topo = Topology(sim)
    stations = [topo.attach("s%d" % i, mac=0x10 + i, ip=i) for i in range(4)]
    hits = []
    for station in stations:
        station.port.receiver = lambda frame, n=station.name: hits.append(n)
    bcast = make_tcp_frame(0x10, (1 << 48) - 1, 1, 2, 1, 2)
    stations[0].port.send(bcast)
    sim.run()
    assert sorted(hits) == ["s1", "s2", "s3"]
    assert topo.switch.flooded == 1


def test_unknown_mac_dropped_and_counted():
    sim = Simulator()
    topo, a, b = build_pair(sim)
    b.port.receiver = lambda frame: None
    unknown = make_tcp_frame(0xA, 0xDEAD, 1, 2, 1, 2)
    a.port.send(unknown)
    sim.run()
    assert topo.switch.unroutable == 1


def test_source_learning():
    sim = Simulator()
    switch = Switch(sim)
    topo = Topology(sim, switch=switch)
    a = topo.attach("a", mac=0xA, ip=1)
    # b attaches without a static MAC binding.
    host_b = Port(sim, "b")
    sw_b = switch.new_port()
    Link(sim, host_b, sw_b, rate_bps=1_000_000_000, prop_delay_ns=0)
    got = []
    host_b.receiver = lambda frame: got.append(frame)
    a.port.receiver = lambda frame: got.append(frame)
    # b sends first; switch learns b's MAC from the source field.
    host_b.send(make_tcp_frame(0xB, 0xA, 2, 1, 2, 1))
    sim.run()
    a.port.send(frame_a_to_b())
    sim.run()
    assert len(got) == 2


def test_tail_drop_on_full_queue():
    sim = Simulator()
    config = SwitchPortConfig(rate_bps=1_000_000_000, queue_capacity_bytes=500)
    switch = Switch(sim, default_config=config)
    topo, a, b = build_pair(sim, switch=switch)
    received = []
    b.port.receiver = lambda frame: received.append(frame)
    for _ in range(20):
        a.port.send(frame_a_to_b(payload=b"y" * 100))
    sim.run()
    stats = switch.egress_stats(b.switch_port)
    assert stats.dropped_tail > 0
    assert len(received) + stats.dropped_tail == 20


def test_ecn_marking_above_threshold():
    sim = Simulator()
    config = SwitchPortConfig(
        rate_bps=100_000_000, queue_capacity_bytes=1 << 20, ecn_threshold_bytes=300
    )
    switch = Switch(sim, default_config=config)
    topo, a, b = build_pair(sim, switch=switch)
    marked = []
    b.port.receiver = lambda frame: marked.append(frame.ip.ce_marked)
    for _ in range(30):
        a.port.send(frame_a_to_b(payload=b"z" * 100, ecn=ECN_ECT0))
    sim.run()
    assert any(marked)
    assert not marked[0]  # first frame saw an empty queue
    assert switch.egress_stats(b.switch_port).marked_ce == sum(marked)


def test_ecn_not_marked_for_not_ect_traffic():
    sim = Simulator()
    config = SwitchPortConfig(rate_bps=100_000_000, ecn_threshold_bytes=100)
    switch = Switch(sim, default_config=config)
    topo, a, b = build_pair(sim, switch=switch)
    marked = []
    b.port.receiver = lambda frame: marked.append(frame.ip.ce_marked)
    for _ in range(10):
        a.port.send(frame_a_to_b(payload=b"z" * 200, ecn=0))
    sim.run()
    assert not any(marked)


def test_wred_drops_between_thresholds():
    sim = Simulator()
    config = SwitchPortConfig(
        rate_bps=100_000_000,
        queue_capacity_bytes=1 << 20,
        red_min_bytes=200,
        red_max_bytes=2000,
    )
    switch = Switch(sim, default_config=config, rng=random.Random(1))
    topo, a, b = build_pair(sim, switch=switch)
    b.port.receiver = lambda frame: None
    for _ in range(100):
        a.port.send(frame_a_to_b(payload=b"w" * 200))
    sim.run()
    assert switch.egress_stats(b.switch_port).dropped_red > 0


def test_shaped_port_paces_output():
    sim = Simulator()
    slow = SwitchPortConfig(rate_bps=100_000_000)  # 100 Mbps
    switch = Switch(sim)
    topo = Topology(sim, switch=switch)
    a = topo.attach("a", mac=0xA, ip=1)
    b = topo.attach("b", mac=0xB, ip=2, config=slow)
    arrivals = []
    b.port.receiver = lambda frame: arrivals.append(sim.now)
    for _ in range(5):
        a.port.send(frame_a_to_b(payload=b"p" * 1000))
    sim.run()
    gaps = [t2 - t1 for t1, t2 in zip(arrivals, arrivals[1:])]
    # 1078-byte wire frames at 100 Mbps: ~86 us spacing.
    assert all(gap > 80_000 for gap in gaps)


def test_loss_injector_drops_at_configured_rate():
    rng = random.Random(42)
    injector = LossInjector(rng, probability=0.3, protect_control=False)
    frame = frame_a_to_b()
    outcomes = [injector.should_drop(frame) for _ in range(5000)]
    rate = sum(outcomes) / len(outcomes)
    assert 0.25 < rate < 0.35
    assert abs(injector.observed_rate - rate) < 1e-9


def test_loss_injector_protects_syn():
    from repro.proto import FLAG_SYN

    rng = random.Random(42)
    injector = LossInjector(rng, probability=1.0, protect_control=True)
    syn = make_tcp_frame(0xA, 0xB, 1, 2, 1, 2, flags=FLAG_SYN)
    data = frame_a_to_b()
    assert not injector.should_drop(syn)
    assert injector.should_drop(data)


def test_switch_level_loss():
    sim = Simulator()
    injector = LossInjector(random.Random(7), probability=1.0, protect_control=False)
    switch = Switch(sim, loss=injector)
    topo, a, b = build_pair(sim, switch=switch)
    got = []
    b.port.receiver = lambda frame: got.append(frame)
    for _ in range(10):
        a.port.send(frame_a_to_b())
    sim.run()
    assert not got
    assert injector.dropped == 10
